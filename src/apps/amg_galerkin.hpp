// Algebraic-multigrid Galerkin triple product — the paper's §1 numerical
// motivation (Ballard, Siefert & Hu [6]): the coarse-grid operator is
// A_c = R * A * P with R = P^T, computed as two SpGEMMs.
//
// Includes a small model-problem factory (1D/2D Poisson) and a piecewise-
// constant aggregation prolongator so examples and tests can build a full
// two-level hierarchy from scratch.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/multiply.hpp"
#include "core/spgemm_handle.hpp"
#include "core/spgemm_rap.hpp"
#include "core/structure_hash.hpp"
#include "engine/spgemm_engine.hpp"
#include "matrix/ops.hpp"

namespace spgemm::apps {

/// 1D Poisson (tridiagonal [-1, 2, -1]) on `n` points.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> poisson_1d(IT n) {
  CooMatrix<IT, VT> coo;
  coo.nrows = n;
  coo.ncols = n;
  for (IT i = 0; i < n; ++i) {
    coo.push_back(i, i, VT{2});
    if (i > 0) coo.push_back(i, i - 1, VT{-1});
    if (i + 1 < n) coo.push_back(i, i + 1, VT{-1});
  }
  return csr_from_coo(std::move(coo));
}

/// 2D Poisson 5-point stencil on an nx-by-ny grid.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> poisson_2d(IT nx, IT ny) {
  const IT n = nx * ny;
  CooMatrix<IT, VT> coo;
  coo.nrows = n;
  coo.ncols = n;
  for (IT y = 0; y < ny; ++y) {
    for (IT x = 0; x < nx; ++x) {
      const IT i = y * nx + x;
      coo.push_back(i, i, VT{4});
      if (x > 0) coo.push_back(i, i - 1, VT{-1});
      if (x + 1 < nx) coo.push_back(i, i + 1, VT{-1});
      if (y > 0) coo.push_back(i, i - nx, VT{-1});
      if (y + 1 < ny) coo.push_back(i, i + nx, VT{-1});
    }
  }
  return csr_from_coo(std::move(coo));
}

/// Piecewise-constant aggregation prolongator: fine point i belongs to
/// aggregate i / agg_size; P is n x ceil(n/agg_size) with a single 1 per
/// row.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> aggregation_prolongator(IT n_fine, IT agg_size) {
  if (agg_size <= 0) {
    throw std::invalid_argument("aggregation_prolongator: agg_size <= 0");
  }
  const IT n_coarse = (n_fine + agg_size - 1) / agg_size;
  CsrMatrix<IT, VT> p(n_fine, n_coarse);
  p.cols.resize(static_cast<std::size_t>(n_fine));
  p.vals.assign(static_cast<std::size_t>(n_fine), VT{1});
  for (IT i = 0; i < n_fine; ++i) {
    p.rpts[static_cast<std::size_t>(i) + 1] = i + 1;
    p.cols[static_cast<std::size_t>(i)] = i / agg_size;
  }
  return p;
}

template <IndexType IT, ValueType VT>
struct GalerkinResult {
  CsrMatrix<IT, VT> coarse;   ///< A_c = P^T A P
  SpGemmStats ap_stats;       ///< stats of the A*P multiply
  SpGemmStats rap_stats;      ///< stats of the P^T*(AP) multiply
};

/// Compute the Galerkin coarse operator with the chosen SpGEMM kernel.
template <IndexType IT, ValueType VT>
GalerkinResult<IT, VT> galerkin_product(const CsrMatrix<IT, VT>& a,
                                        const CsrMatrix<IT, VT>& p,
                                        SpGemmOptions opts = {}) {
  if (opts.algorithm == Algorithm::kAuto) opts.algorithm = Algorithm::kHash;
  GalerkinResult<IT, VT> out;
  const CsrMatrix<IT, VT> r = transpose(p);
  const CsrMatrix<IT, VT> ap = multiply(a, p, opts, &out.ap_stats);
  out.coarse = multiply(r, ap, opts, &out.rap_stats);
  return out;
}

/// Fused triple product: A_c = R * (A * P) through multiply_rap()
/// (core/spgemm_rap.hpp) — each A*P row is expanded on demand inside the
/// R* pass and folded straight into the coarse row, so the intermediate AP
/// CSR is never assembled.  With an aggregation prolongator every fine row
/// feeds exactly one coarse row, so nothing is recomputed either.
/// Bit-identical to galerkin_product() with sorted output for visit-order
/// kernels; ap_stats stays zero (there is no separate A*P pass).
template <IndexType IT, ValueType VT>
GalerkinResult<IT, VT> galerkin_product_fused(const CsrMatrix<IT, VT>& a,
                                              const CsrMatrix<IT, VT>& p,
                                              SpGemmOptions opts = {}) {
  GalerkinResult<IT, VT> out;
  const CsrMatrix<IT, VT> r = transpose(p);
  out.coarse = multiply_rap(r, a, p, opts, &out.rap_stats);
  return out;
}

/// Handle-based Galerkin re-assembly for time stepping: R = P^T and the
/// sparsity of A are fixed across steps while A's values change, so both
/// SpGEMMs (A*P and R*(AP)) are planned once and every later step runs
/// numeric-only replay — no symbolic phase, no allocation.
///
///   apps::GalerkinReassembler<int, double> rap(a, p);
///   for (step : steps) {
///     update_stiffness_values(a);          // structure unchanged
///     const auto& coarse = rap.reassemble(a);
///   }
///
/// The intermediate AP lives in the A*P handle's pooled output; because its
/// buffers never move after the first execute, the R*(AP) handle's O(1)
/// structure check stays on the pointer-identity fast path every step.
///
/// Engine mode: construct with an engine::SpGemmEngine instead and both
/// SpGEMMs are served through the engine's shared PlanCache — many
/// reassemblers (one per AMG level) then share ONE cache, so a hierarchy's
/// worth of plans competes under one byte budget instead of pinning two
/// private handles per level:
///
///   engine::SpGemmEngine<int, double> eng;
///   std::vector<apps::GalerkinReassembler<int, double>> levels;
///   levels.emplace_back(eng, a0, p0);   // level operators share eng's
///   levels.emplace_back(eng, a1, p1);   // plan cache and worker pool
///
/// Differences from handle mode: structure drift in `a` replans (a cache
/// miss) instead of throwing, and the returned matrix is an owned copy.
/// R, P and the intermediate AP keep their fingerprints cached, so a
/// steady-state step pays one O(nnz(A)) fingerprint and two numeric-only
/// replays.
template <IndexType IT, ValueType VT>
class GalerkinReassembler {
 public:
  /// `fuse_rap` routes every reassemble() through multiply_rap(): no AP
  /// handle, no retained intermediate — the per-step cost is one fused
  /// triple-product pass.  Trades the numeric-only replay of the planned
  /// pipeline for the smaller working set; best when memory, not replay
  /// latency, is the binding constraint.
  GalerkinReassembler(const CsrMatrix<IT, VT>& a, CsrMatrix<IT, VT> p,
                      SpGemmOptions opts = {}, bool fuse_rap = false)
      : p_(std::move(p)), r_(transpose(p_)), fuse_rap_(fuse_rap) {
    // kAuto flows through to plan()'s recipe resolution; only genuinely
    // non-plannable one-phase kernels are mapped to Hash.
    if (opts.algorithm != Algorithm::kAuto &&
        !is_two_phase(opts.algorithm)) {
      opts.algorithm = Algorithm::kHash;
    }
    if (fuse_rap_) {
      fused_opts_ = opts;
      return;  // nothing to plan: each step is a one-shot fused pass
    }
    ap_handle_.plan(a, p_, opts);
    const CsrMatrix<IT, VT>& ap = ap_handle_.execute(a, p_);
    rap_handle_.plan(r_, ap, opts);
  }

  GalerkinReassembler(engine::SpGemmEngine<IT, VT>& engine,
                      const CsrMatrix<IT, VT>& a, CsrMatrix<IT, VT> p)
      : p_(std::move(p)), r_(transpose(p_)), engine_(&engine),
        fp_p_(structure_fingerprint(p_)), fp_r_(structure_fingerprint(r_)) {
    // Warm the shared cache with both plans (and learn AP's fingerprint)
    // so the first real time step is already a pair of replays.
    reassemble(a);
  }

  /// Recompute A_c = R * (A * P) for new values of A (same structure as the
  /// A the reassembler was built from; drift throws std::invalid_argument
  /// in handle mode, replans in engine mode).  The returned reference stays
  /// valid until the next reassemble() call.
  const CsrMatrix<IT, VT>& reassemble(const CsrMatrix<IT, VT>& a,
                                      SpGemmStats* ap_stats = nullptr,
                                      SpGemmStats* rap_stats = nullptr) {
    if (engine_ != nullptr) {
      // A's values change per step but its structure is expected stable;
      // re-fingerprinting (O(nnz), far below symbolic cost) means a caller
      // that DOES drift gets a correct replan, never a stale plan.
      const std::uint64_t fp_a = structure_fingerprint(a);
      ap_product_ = engine_->multiply_hashed(a, p_, fp_a, fp_p_);
      if (ap_stats != nullptr) *ap_stats = ap_product_.stats;
      // AP's structure is a function of A's and P's structures, so its
      // cached fingerprint is valid exactly while A's fingerprint is the
      // one it was derived from.  Keying on fp_a (not on cache_hit) also
      // covers RETURN drift — A going S0 -> S1 -> S0 makes the A*P lookup
      // hit again while fp_ap_ still describes S1's intermediate.
      if (!fp_ap_known_ || fp_a != fp_a_of_ap_) {
        fp_ap_ = structure_fingerprint(ap_product_.c);
        fp_a_of_ap_ = fp_a;
        fp_ap_known_ = true;
      }
      coarse_product_ =
          engine_->multiply_hashed(r_, ap_product_.c, fp_r_, fp_ap_);
      if (rap_stats != nullptr) *rap_stats = coarse_product_.stats;
      ++engine_reassemblies_;
      return coarse_product_.c;
    }
    if (fuse_rap_) {
      if (ap_stats != nullptr) *ap_stats = SpGemmStats{};
      fused_coarse_ = multiply_rap(r_, a, p_, fused_opts_, rap_stats);
      ++fused_reassemblies_;
      return fused_coarse_;
    }
    const CsrMatrix<IT, VT>& ap =
        ap_handle_.execute(a, p_, PlusTimes{}, ap_stats);
    return rap_handle_.execute(r_, ap, PlusTimes{}, rap_stats);
  }

  [[nodiscard]] const CsrMatrix<IT, VT>& prolongator() const { return p_; }
  [[nodiscard]] const CsrMatrix<IT, VT>& restriction() const { return r_; }
  /// Coarse-operator products served so far (excludes the plan-time one).
  [[nodiscard]] std::uint64_t reassemblies() const {
    if (engine_ != nullptr) {
      return engine_reassemblies_ > 0 ? engine_reassemblies_ - 1 : 0;
    }
    return fuse_rap_ ? fused_reassemblies_ : rap_handle_.executions();
  }
  /// Whether the last reassemble()'s products both replayed cached plans.
  [[nodiscard]] bool last_step_cached() const {
    return engine_ != nullptr && ap_product_.cache_hit &&
           coarse_product_.cache_hit;
  }

 private:
  CsrMatrix<IT, VT> p_;
  CsrMatrix<IT, VT> r_;
  SpGemmHandle<IT, VT> ap_handle_;
  SpGemmHandle<IT, VT> rap_handle_;

  // Fused-RAP mode only.
  bool fuse_rap_ = false;
  SpGemmOptions fused_opts_;
  CsrMatrix<IT, VT> fused_coarse_;
  std::uint64_t fused_reassemblies_ = 0;

  // Engine mode only.
  engine::SpGemmEngine<IT, VT>* engine_ = nullptr;
  typename engine::SpGemmEngine<IT, VT>::Product ap_product_;
  typename engine::SpGemmEngine<IT, VT>::Product coarse_product_;
  std::uint64_t fp_p_ = 0;
  std::uint64_t fp_r_ = 0;
  std::uint64_t fp_ap_ = 0;
  std::uint64_t fp_a_of_ap_ = 0;  ///< the A fingerprint fp_ap_ derives from
  bool fp_ap_known_ = false;
  std::uint64_t engine_reassemblies_ = 0;
};

}  // namespace spgemm::apps
