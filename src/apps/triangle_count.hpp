// Triangle counting via SpGEMM (paper §5.6, after Azad, Buluç & Gilbert
// [4]).
//
// Pipeline: reorder vertices by increasing degree, split the adjacency
// matrix A = L + U into strict triangles, compute the wedge matrix W = L*U
// (the SpGEMM step the paper benchmarks), then count the wedges that close
// into triangles: with the smallest-labelled vertex as the wedge apex,
// every triangle {i, j, k} (k < j < i) is counted exactly once by
// sum( (L*U) .* L ).
#pragma once

#include <cstdint>

#include "core/multiply.hpp"
#include "core/spgemm_masked.hpp"
#include "matrix/ops.hpp"
#include "matrix/triangular.hpp"

namespace spgemm::apps {

template <IndexType IT, ValueType VT>
struct TriangleCountResult {
  std::int64_t triangles = 0;
  SpGemmStats spgemm_stats;   ///< timings of the L*U multiply
  CsrMatrix<IT, VT> wedges;   ///< W = L*U (kept for inspection/tests)
};

/// Masked variant: fuses the L*U product with the edge-mask intersection
/// via multiply_masked(), never materializing the wedge matrix.  Returns
/// the same count as count_triangles() with wedges restricted to L's
/// structure (out.wedges holds the masked product).
template <IndexType IT, ValueType VT>
TriangleCountResult<IT, VT> count_triangles_masked(
    const CsrMatrix<IT, VT>& a, SpGemmOptions opts = {}) {
  CsrMatrix<IT, VT> pattern = a;
  for (auto& v : pattern.vals) v = VT{1};
  TriangularSplit<IT, VT> split = prepare_triangle_split(pattern);
  if (opts.algorithm == Algorithm::kAuto) opts.algorithm = Algorithm::kHash;

  TriangleCountResult<IT, VT> out;
  out.wedges = multiply_masked(split.lower, split.upper, split.lower, opts,
                               &out.spgemm_stats);
  double closed = 0.0;
  for (const VT v : out.wedges.vals) closed += static_cast<double>(v);
  out.triangles = static_cast<std::int64_t>(closed + 0.5);
  return out;
}

/// Fused-epilogue variant: the wedge matrix W = L*U is never materialized.
/// A kMaskReduce epilogue intersects each W row with L's row and folds the
/// surviving wedge counts into a scalar while the row is still in the
/// accumulator's staging buffer — zero entries are kept, so the pipeline's
/// peak memory is the inputs plus thread scratch.  Counts are integer-valued
/// doubles, so the per-thread fold is exact and the result matches
/// count_triangles() bit-for-bit.  out.wedges stays empty.
template <IndexType IT, ValueType VT>
TriangleCountResult<IT, VT> count_triangles_fused(
    const CsrMatrix<IT, VT>& a, SpGemmOptions opts = {}) {
  CsrMatrix<IT, VT> pattern = a;
  for (auto& v : pattern.vals) v = VT{1};
  TriangularSplit<IT, VT> split = prepare_triangle_split(pattern);

  if (opts.algorithm == Algorithm::kAuto) {
    opts.algorithm = recipe::select_for(
        split.lower, split.upper, recipe::Operation::kTriangular,
        opts.sort_output, recipe::DataOrigin::kReal);
    if (!is_two_phase(opts.algorithm)) opts.algorithm = Algorithm::kHash;
  }
  opts.epilogue.kind = EpilogueKind::kMaskReduce;

  TriangleCountResult<IT, VT> out;
  EpilogueResult closed;
  multiply_with_epilogue(split.lower, split.upper, opts, &closed,
                         &split.lower, &out.spgemm_stats);
  out.triangles = static_cast<std::int64_t>(closed.reduce + 0.5);
  return out;
}

/// Count triangles of the undirected graph whose adjacency matrix is `a`
/// (must be structurally symmetric; values are ignored — structure only).
template <IndexType IT, ValueType VT>
TriangleCountResult<IT, VT> count_triangles(const CsrMatrix<IT, VT>& a,
                                            SpGemmOptions opts = {}) {
  // Binarize so wedge counts are pure path counts.
  CsrMatrix<IT, VT> pattern = a;
  for (auto& v : pattern.vals) v = VT{1};

  TriangularSplit<IT, VT> split = prepare_triangle_split(pattern);

  if (opts.algorithm == Algorithm::kAuto) {
    opts.algorithm = recipe::select_for(
        split.lower, split.upper, recipe::Operation::kTriangular,
        opts.sort_output, recipe::DataOrigin::kReal);
  }
  TriangleCountResult<IT, VT> out;
  out.wedges =
      multiply(split.lower, split.upper, opts, &out.spgemm_stats);
  const double closed = masked_sum(out.wedges, split.lower);
  out.triangles = static_cast<std::int64_t>(closed + 0.5);
  return out;
}

}  // namespace spgemm::apps
