// Markov clustering (MCL) — the paper's §1/§5.4 motivating application
// (HipMCL [5]): alternate expansion (M = M^2, the SpGEMM the paper
// benchmarks as "squaring a matrix"), inflation (elementwise power and
// column re-normalization) and pruning of small entries until the matrix
// reaches a fixed point; clusters are read off the attractor structure.
#pragma once

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/multiply.hpp"
#include "core/spgemm_handle.hpp"
#include "core/structure_hash.hpp"
#include "engine/spgemm_engine.hpp"
#include "matrix/ops.hpp"

namespace spgemm::apps {

struct MclParams {
  double inflation = 2.0;    ///< elementwise exponent
  double prune_below = 1e-4; ///< drop entries smaller than this
  int max_iterations = 64;
  double convergence_eps = 1e-8;  ///< max |M - M_prev| entry change
  /// Fuse inflation+pruning into the expansion's numeric pass as a
  /// kPruneScale epilogue: each M^2 row is powered and thresholded while
  /// cache-hot and only kept entries are staged, so the unpruned M^2 never
  /// materializes.  pow/threshold run per element in the same order either
  /// way, so the clustering is bit-identical; column re-normalization stays
  /// an exact post-pass over the (much smaller) pruned matrix.
  bool fuse_epilogue = true;
};

template <IndexType IT>
struct MclResult {
  std::vector<IT> cluster_of;  ///< cluster id per vertex (0..k-1, dense)
  IT clusters = 0;
  int iterations = 0;
  bool converged = false;
  /// Inspector-executor observability: expansions that had to re-run the
  /// symbolic phase because pruning changed M's structure, vs expansions
  /// served by numeric-only replay of the previous plan.  As the iteration
  /// approaches its fixed point the structure stabilizes and replays take
  /// over.
  int plan_builds = 0;
  int plan_reuses = 0;
};

namespace detail {

/// Normalize columns to sum 1 (a column-stochastic matrix).  Works on CSR
/// by accumulating column sums first.
template <IndexType IT, ValueType VT>
void normalize_columns(CsrMatrix<IT, VT>& m) {
  std::vector<double> colsum(static_cast<std::size_t>(m.ncols), 0.0);
  for (std::size_t j = 0; j < m.cols.size(); ++j) {
    colsum[static_cast<std::size_t>(m.cols[j])] +=
        static_cast<double>(m.vals[j]);
  }
  for (std::size_t j = 0; j < m.cols.size(); ++j) {
    const double s = colsum[static_cast<std::size_t>(m.cols[j])];
    if (s > 0.0) {
      m.vals[j] = static_cast<VT>(static_cast<double>(m.vals[j]) / s);
    }
  }
}

/// Elementwise power then drop entries below the prune threshold.  When
/// `structure_hash` is non-null it receives structure_fingerprint(out),
/// maintained incrementally while the scan emits — the expansion handle's
/// ensure_planned_hashed can then validate a stabilized iteration in O(1)
/// instead of re-reading the whole structure.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> inflate_and_prune(const CsrMatrix<IT, VT>& m,
                                    double inflation, double prune_below,
                                    std::uint64_t* structure_hash = nullptr) {
  CsrMatrix<IT, VT> out(m.nrows, m.ncols);
  out.cols.reserve(m.cols.size());
  out.vals.reserve(m.vals.size());
  FnvHasher rpts_chain;
  FnvHasher cols_chain;
  rpts_chain.mix(0);  // rpts[0], part of the fingerprint's rpts stream
  for (IT i = 0; i < m.nrows; ++i) {
    Offset kept = 0;
    for (Offset j = m.row_begin(i); j < m.row_end(i); ++j) {
      const double inflated = std::pow(
          static_cast<double>(m.vals[static_cast<std::size_t>(j)]),
          inflation);
      if (inflated >= prune_below) {
        const IT col = m.cols[static_cast<std::size_t>(j)];
        out.cols.push_back(col);
        out.vals.push_back(static_cast<VT>(inflated));
        cols_chain.mix(static_cast<std::uint64_t>(col));
        ++kept;
      }
    }
    const Offset row_end = out.rpts[static_cast<std::size_t>(i)] + kept;
    out.rpts[static_cast<std::size_t>(i) + 1] = row_end;
    rpts_chain.mix(static_cast<std::uint64_t>(row_end));
  }
  out.sortedness = m.sortedness;
  if (structure_hash != nullptr) {
    *structure_hash =
        combine_structure_hash(rpts_chain.value(), cols_chain.value());
  }
  return out;
}

/// Max absolute entrywise difference (rows compared as sorted lists).
template <IndexType IT, ValueType VT>
double max_entry_change(const CsrMatrix<IT, VT>& a,
                        const CsrMatrix<IT, VT>& b) {
  double worst = 0.0;
  std::vector<double> dense(static_cast<std::size_t>(a.ncols), 0.0);
  for (IT i = 0; i < a.nrows; ++i) {
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      dense[static_cast<std::size_t>(a.cols[static_cast<std::size_t>(j)])] =
          static_cast<double>(a.vals[static_cast<std::size_t>(j)]);
    }
    for (Offset j = b.row_begin(i); j < b.row_end(i); ++j) {
      const auto c = static_cast<std::size_t>(
          b.cols[static_cast<std::size_t>(j)]);
      worst = std::max(worst,
                       std::abs(dense[c] -
                                static_cast<double>(
                                    b.vals[static_cast<std::size_t>(j)])));
      dense[c] = 0.0;
    }
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const auto c = static_cast<std::size_t>(
          a.cols[static_cast<std::size_t>(j)]);
      worst = std::max(worst, std::abs(dense[c]));
      dense[c] = 0.0;
    }
  }
  return worst;
}

/// M = normalize(A + I): self-loops added (standard MCL practice), columns
/// made stochastic.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> mcl_initial_matrix(const CsrMatrix<IT, VT>& graph) {
  CooMatrix<IT, VT> assembly;
  assembly.nrows = graph.nrows;
  assembly.ncols = graph.ncols;
  for (IT i = 0; i < graph.nrows; ++i) {
    assembly.push_back(i, i, VT{1});
    for (Offset j = graph.row_begin(i); j < graph.row_end(i); ++j) {
      assembly.push_back(i, graph.cols[static_cast<std::size_t>(j)],
                         VT{1});
    }
  }
  CsrMatrix<IT, VT> m = csr_from_coo(std::move(assembly));
  normalize_columns(m);
  return m;
}

/// The expand-inflate-prune fixed-point loop plus cluster interpretation,
/// shared by the handle-based and engine-based fronts.  `expand` computes
/// one M^2: (m, fingerprint(m), out bool reused) -> expanded matrix
/// reference valid until the next expand call.  M's structure fingerprint
/// rides along incrementally: paid once up front, then maintained by
/// inflate_and_prune while it scans, so stabilized iterations validate
/// their plan (or hit the plan cache) in O(1) instead of re-hashing
/// O(nnz) every expansion.
template <IndexType IT, ValueType VT, typename Expand>
MclResult<IT> run_mcl(CsrMatrix<IT, VT> m, const MclParams& params,
                      Expand&& expand) {
  MclResult<IT> out;
  std::uint64_t m_hash = structure_fingerprint(m);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    bool reused = false;
    const CsrMatrix<IT, VT>& expanded = expand(m, m_hash, reused);
    if (reused) {
      ++out.plan_reuses;
    } else {
      ++out.plan_builds;
    }
    std::uint64_t next_hash = 0;
    CsrMatrix<IT, VT> next;
    if (params.fuse_epilogue) {
      // The expansion already inflated and pruned each row in its numeric
      // pass (kPruneScale epilogue); copy out of the serving plan and
      // fingerprint the small kept structure.
      next = expanded;
      next_hash = structure_fingerprint(next);
    } else {
      next = inflate_and_prune(expanded, params.inflation,
                               params.prune_below, &next_hash);
    }
    normalize_columns(next);
    ++out.iterations;
    const bool converged =
        max_entry_change(m, next) < params.convergence_eps;
    m = std::move(next);
    m_hash = next_hash;
    if (converged) {
      out.converged = true;
      break;
    }
  }

  // Interpret the limit matrix: attractors are vertices with weight on
  // their own column; every vertex joins the cluster of the attractor(s)
  // it flows to (largest entry in its column).
  const auto n = static_cast<std::size_t>(m.nrows);
  std::vector<IT> attractor_of(n, IT{-1});
  std::vector<double> best(n, -1.0);
  for (IT i = 0; i < m.nrows; ++i) {
    for (Offset j = m.row_begin(i); j < m.row_end(i); ++j) {
      const auto col = static_cast<std::size_t>(
          m.cols[static_cast<std::size_t>(j)]);
      const auto v = static_cast<double>(
          m.vals[static_cast<std::size_t>(j)]);
      if (v > best[col]) {
        best[col] = v;
        attractor_of[col] = i;  // column col flows to attractor row i
      }
    }
  }
  // Collapse attractor ids to dense cluster labels (attractors that share
  // a row belong together).
  out.cluster_of.assign(n, IT{-1});
  std::vector<IT> label_of_attractor(n, IT{-1});
  IT next_label = 0;
  for (std::size_t v = 0; v < n; ++v) {
    IT a = attractor_of[v];
    if (a < 0) a = static_cast<IT>(v);  // isolated vertex: own cluster
    if (label_of_attractor[static_cast<std::size_t>(a)] < 0) {
      label_of_attractor[static_cast<std::size_t>(a)] = next_label++;
    }
    out.cluster_of[v] = label_of_attractor[static_cast<std::size_t>(a)];
  }
  out.clusters = next_label;
  return out;
}

}  // namespace detail

/// Run MCL on the (undirected) graph adjacency matrix.  Expansion runs
/// through one persistent inspector-executor handle: pruning changes M's
/// structure in early iterations (replan), but near the fixed point the
/// pattern freezes and each M^2 is a numeric-only replay of the last plan.
template <IndexType IT, ValueType VT>
MclResult<IT> markov_cluster(const CsrMatrix<IT, VT>& graph,
                             const MclParams& params = {},
                             SpGemmOptions opts = {}) {
  // Expansion runs through the inspector-executor handle, so it needs a
  // two-phase kernel; kAuto resolves through plan()'s recipe, one-phase
  // requests map to Hash.
  if (opts.algorithm != Algorithm::kAuto &&
      !is_two_phase(opts.algorithm)) {
    opts.algorithm = Algorithm::kHash;
  }
  if (params.fuse_epilogue) {
    opts.epilogue.kind = EpilogueKind::kPruneScale;
    opts.epilogue.inflation = params.inflation;
    opts.epilogue.prune_below = params.prune_below;
  }
  SpGemmHandle<IT, VT> expansion;
  return detail::run_mcl<IT, VT>(
      detail::mcl_initial_matrix(graph), params,
      [&](const CsrMatrix<IT, VT>& m, std::uint64_t m_hash,
          bool& reused) -> const CsrMatrix<IT, VT>& {
        reused = !expansion.ensure_planned_hashed(m, m, m_hash, m_hash,
                                                  opts);
        return expansion.execute(m, m);
      });
}

/// MCL with its expansion rounds streamed through a shared serving engine
/// (engine/spgemm_engine.hpp): each M^2 is submitted as a request whose
/// fingerprints ride along from inflate_and_prune, so stabilized
/// iterations hit the engine's PlanCache — and because the cache is the
/// ENGINE's, many concurrent clusterings (or any other tenants) share one
/// plan store and one worker pool.  plan_builds/plan_reuses report cache
/// misses/hits as seen by this stream.
template <IndexType IT, ValueType VT>
MclResult<IT> markov_cluster(const CsrMatrix<IT, VT>& graph,
                             engine::SpGemmEngine<IT, VT>& eng,
                             const MclParams& params = {}) {
  EpilogueSpec epilogue;
  if (params.fuse_epilogue) {
    epilogue.kind = EpilogueKind::kPruneScale;
    epilogue.inflation = params.inflation;
    epilogue.prune_below = params.prune_below;
  }
  typename engine::SpGemmEngine<IT, VT>::Product product;
  return detail::run_mcl<IT, VT>(
      detail::mcl_initial_matrix(graph), params,
      [&](const CsrMatrix<IT, VT>& m, std::uint64_t m_hash,
          bool& reused) -> const CsrMatrix<IT, VT>& {
        typename engine::SpGemmEngine<IT, VT>::Request req;
        req.a = &m;
        req.b = &m;
        req.fp_a = m_hash;
        req.fp_b = m_hash;
        req.has_fingerprints = true;
        req.epilogue = epilogue;
        product = eng.submit(req).get();
        reused = product.cache_hit;
        return product.c;
      });
}

}  // namespace spgemm::apps
