// Batched betweenness centrality (Brandes) — the paper's §1/§5.5
// motivation for square x tall-skinny SpGEMM ("many graph processing
// algorithms perform multiple breadth-first searches in parallel, an
// example being Betweenness Centrality on unweighted graphs").
//
// The forward sweep processes a batch of sources simultaneously: the
// frontier stack is an n x k sparse matrix whose values carry shortest-path
// counts, and one level expansion is exactly the tall-skinny SpGEMM
// P = A^T * F over (+, *) — the paper's Fig. 16 workload.  The backward
// (dependency) sweep walks levels down with per-(vertex, source) dense
// bookkeeping, which is exact and keeps this implementation auditable; the
// SpGEMM-bound phase is the forward sweep.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/multiply.hpp"
#include "matrix/ops.hpp"

namespace spgemm::apps {

template <IndexType IT>
struct BetweennessResult {
  /// Accumulated dependency per vertex over the processed sources
  /// (endpoints excluded).  For exact BC over the whole graph, pass every
  /// vertex as a source; for approximate BC, a sample.
  std::vector<double> score;
  int levels = 0;  ///< depth of the deepest BFS in the batch
};

/// Run the batched Brandes algorithm from `sources` on the (unweighted)
/// graph `a`.  Directed interpretation: edges point row -> column; for
/// undirected graphs pass a symmetric matrix (scores then count each
/// unordered pair's dependency once per direction; divide by 2 outside if
/// the undirected convention is wanted).
template <IndexType IT, ValueType VT>
BetweennessResult<IT> betweenness_centrality(const CsrMatrix<IT, VT>& a,
                                             const std::vector<IT>& sources,
                                             SpGemmOptions opts = {}) {
  if (a.nrows != a.ncols) {
    throw std::invalid_argument("betweenness: adjacency must be square");
  }
  if (opts.algorithm == Algorithm::kAuto) opts.algorithm = Algorithm::kHash;
  const auto n = static_cast<std::size_t>(a.nrows);
  const auto k = sources.size();

  // Pattern matrix with unit weights: path counts are pure combinatorics.
  CsrMatrix<IT, VT> pattern = a;
  for (auto& v : pattern.vals) v = VT{1};
  const CsrMatrix<IT, VT> at = transpose(pattern);

  // Per-(vertex, source) state, dense: BFS level and shortest-path count.
  std::vector<std::int32_t> level(n * k, -1);
  std::vector<double> sigma(n * k, 0.0);

  // Initial frontier: sigma = 1 at each source.
  CooMatrix<IT, VT> f0;
  f0.nrows = a.nrows;
  f0.ncols = static_cast<IT>(k);
  for (std::size_t s = 0; s < k; ++s) {
    const auto v = static_cast<std::size_t>(sources[s]);
    f0.push_back(sources[s], static_cast<IT>(s), VT{1});
    level[v * k + s] = 0;
    sigma[v * k + s] = 1.0;
  }
  CsrMatrix<IT, VT> frontier = csr_from_coo(std::move(f0));

  // ---- Forward sweep: one tall-skinny SpGEMM per BFS level. -------------
  BetweennessResult<IT> out;
  for (std::int32_t depth = 1; frontier.nnz() > 0; ++depth) {
    // P(v, s) = sum over predecessors u in the frontier of sigma(u, s):
    // exactly the (+, *) product of A^T with the sigma-valued frontier.
    const CsrMatrix<IT, VT> p = multiply(at, frontier, opts);

    CooMatrix<IT, VT> next;
    next.nrows = a.nrows;
    next.ncols = static_cast<IT>(k);
    for (IT v = 0; v < p.nrows; ++v) {
      for (Offset j = p.row_begin(v); j < p.row_end(v); ++j) {
        const auto s = static_cast<std::size_t>(
            p.cols[static_cast<std::size_t>(j)]);
        const auto slot = static_cast<std::size_t>(v) * k + s;
        if (level[slot] < 0) {
          level[slot] = depth;
          sigma[slot] =
              static_cast<double>(p.vals[static_cast<std::size_t>(j)]);
          next.push_back(v, static_cast<IT>(s),
                         p.vals[static_cast<std::size_t>(j)]);
        }
      }
    }
    frontier = csr_from_coo(std::move(next));
    if (frontier.nnz() > 0) out.levels = depth;
  }

  // ---- Backward sweep: dependency accumulation level by level. ----------
  std::vector<double> delta(n * k, 0.0);
  for (std::int32_t d = out.levels - 1; d >= 0; --d) {
    for (std::size_t v = 0; v < n; ++v) {
      for (Offset j = pattern.row_begin(static_cast<IT>(v));
           j < pattern.row_end(static_cast<IT>(v)); ++j) {
        const auto w = static_cast<std::size_t>(
            pattern.cols[static_cast<std::size_t>(j)]);
        for (std::size_t s = 0; s < k; ++s) {
          if (level[v * k + s] == d && level[w * k + s] == d + 1 &&
              sigma[w * k + s] > 0.0) {
            delta[v * k + s] += sigma[v * k + s] / sigma[w * k + s] *
                                (1.0 + delta[w * k + s]);
          }
        }
      }
    }
  }

  out.score.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t s = 0; s < k; ++s) {
      if (static_cast<IT>(v) != sources[s] && level[v * k + s] >= 0) {
        out.score[v] += delta[v * k + s];
      }
    }
  }
  return out;
}

/// Serial single-source Brandes oracle for tests (dependency accumulation
/// via the classic stack formulation).
template <IndexType IT, ValueType VT>
std::vector<double> brandes_reference(const CsrMatrix<IT, VT>& a,
                                      const std::vector<IT>& sources) {
  const auto n = static_cast<std::size_t>(a.nrows);
  std::vector<double> bc(n, 0.0);
  for (const IT src : sources) {
    std::vector<IT> stack;
    std::vector<std::vector<IT>> preds(n);
    std::vector<double> sigma(n, 0.0);
    std::vector<std::int32_t> dist(n, -1);
    sigma[static_cast<std::size_t>(src)] = 1.0;
    dist[static_cast<std::size_t>(src)] = 0;
    std::vector<IT> queue{src};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const IT v = queue[head];
      stack.push_back(v);
      for (Offset j = a.row_begin(v); j < a.row_end(v); ++j) {
        const IT w = a.cols[static_cast<std::size_t>(j)];
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(v)] + 1;
          queue.push_back(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] +=
              sigma[static_cast<std::size_t>(v)];
          preds[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(n, 0.0);
    while (!stack.empty()) {
      const IT w = stack.back();
      stack.pop_back();
      for (const IT v : preds[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != src) bc[static_cast<std::size_t>(w)] += delta[
          static_cast<std::size_t>(w)];
    }
  }
  return bc;
}

}  // namespace spgemm::apps
