// All-pairs cosine similarity via SpGEMM — the paper's §1 "high-dimensional
// similarity search" motivation (Agrawal et al. [1]).
//
// Items are rows of a sparse feature matrix A.  Row-normalize to unit
// 2-norm, then S = Â * Â^T holds every pairwise cosine similarity; pruning
// below a threshold keeps S sparse, and the masked variant of the product
// restricts the computation to candidate pairs.
#pragma once

#include <cmath>
#include <stdexcept>

#include "core/multiply.hpp"
#include "matrix/ops.hpp"
#include "shard/sharded_spgemm.hpp"

namespace spgemm::apps {

/// Row-normalize to unit Euclidean norm (zero rows stay zero).
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> normalize_rows(const CsrMatrix<IT, VT>& a) {
  CsrMatrix<IT, VT> out = a;
  for (IT i = 0; i < a.nrows; ++i) {
    double norm_sq = 0.0;
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const auto v = static_cast<double>(a.vals[static_cast<std::size_t>(j)]);
      norm_sq += v * v;
    }
    if (norm_sq <= 0.0) continue;
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      out.vals[static_cast<std::size_t>(j)] = static_cast<VT>(
          static_cast<double>(a.vals[static_cast<std::size_t>(j)]) * inv);
    }
  }
  return out;
}

/// Drop entries with |value| < threshold and (optionally) the diagonal.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> prune(const CsrMatrix<IT, VT>& a, double threshold,
                        bool drop_diagonal) {
  CsrMatrix<IT, VT> out(a.nrows, a.ncols);
  out.cols.reserve(a.cols.size());
  out.vals.reserve(a.vals.size());
  for (IT i = 0; i < a.nrows; ++i) {
    Offset kept = 0;
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const IT col = a.cols[static_cast<std::size_t>(j)];
      const auto v = static_cast<double>(a.vals[static_cast<std::size_t>(j)]);
      if (std::abs(v) < threshold) continue;
      if (drop_diagonal && col == i) continue;
      out.cols.push_back(col);
      out.vals.push_back(a.vals[static_cast<std::size_t>(j)]);
      ++kept;
    }
    out.rpts[static_cast<std::size_t>(i) + 1] =
        out.rpts[static_cast<std::size_t>(i)] + kept;
  }
  out.sortedness = a.sortedness;
  return out;
}

struct SimilarityParams {
  double threshold = 0.1;     ///< keep pairs with cosine >= threshold
  bool drop_diagonal = true;  ///< self-similarity (1.0) is uninformative
};

/// S = prune(Â Â^T): sparse all-pairs cosine similarity of the rows of A.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> cosine_similarity(const CsrMatrix<IT, VT>& a,
                                    const SimilarityParams& params = {},
                                    SpGemmOptions opts = {},
                                    SpGemmStats* stats = nullptr) {
  if (opts.algorithm == Algorithm::kAuto) opts.algorithm = Algorithm::kHash;
  const CsrMatrix<IT, VT> normalized = normalize_rows(a);
  const CsrMatrix<IT, VT> normalized_t = transpose(normalized);
  const CsrMatrix<IT, VT> product =
      multiply(normalized, normalized_t, opts, stats);
  return prune(product, params.threshold, params.drop_diagonal);
}

/// Out-of-core cosine similarity: the Â Â^T product runs through the
/// block-sharded driver (shard/sharded_spgemm.hpp), so corpora whose
/// similarity working state exceeds DRAM — the regime the paper's §1
/// motivation actually lives in — stream under `sharded`'s memory budget
/// instead of failing.  The normalized matrix and its transpose are built
/// in full (they are input-sized; the product is what explodes).
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> cosine_similarity(const CsrMatrix<IT, VT>& a,
                                    shard::ShardedSpGemm<IT, VT>& sharded,
                                    const SimilarityParams& params = {}) {
  const CsrMatrix<IT, VT> normalized = normalize_rows(a);
  const CsrMatrix<IT, VT> normalized_t = transpose(normalized);
  const CsrMatrix<IT, VT> product = sharded.multiply(normalized, normalized_t);
  return prune(product, params.threshold, params.drop_diagonal);
}

}  // namespace spgemm::apps
