// R-MAT recursive matrix generator (Chakrabarti et al.), parameterized as in
// the paper's §5.1: ER (a=b=c=d=0.25, Erdős–Rényi-like) and G500
// (a=0.57, b=c=0.19, d=0.05, the skewed Graph500 distribution).  A scale-n
// matrix is 2^n-by-2^n; edge_factor is the average nonzeros per row.
//
// Edges are generated in parallel (each thread owns a contiguous slice of
// the edge count with an independent seeded stream, so results are
// deterministic for a given (seed, threads-independent) configuration),
// then deduplicated through COO->CSR conversion.  Duplicate collapsing means
// the realized nnz is slightly below scale*edge_factor for skewed
// parameters, exactly as with the reference Graph500 generator.
#pragma once

#include <omp.h>

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace spgemm {

struct RmatParams {
  double a = 0.25;
  double b = 0.25;
  double c = 0.25;
  int scale = 10;          ///< matrix is 2^scale square
  int edge_factor = 16;    ///< average nnz per row before dedup
  std::uint64_t seed = 42;
  bool symmetric = false;  ///< mirror each edge (undirected graphs)
  // d = 1 - a - b - c

  static RmatParams er(int scale, int edge_factor, std::uint64_t seed = 42) {
    RmatParams p;
    p.a = p.b = p.c = 0.25;
    p.scale = scale;
    p.edge_factor = edge_factor;
    p.seed = seed;
    return p;
  }

  static RmatParams g500(int scale, int edge_factor,
                         std::uint64_t seed = 42) {
    RmatParams p;
    p.a = 0.57;
    p.b = p.c = 0.19;
    p.scale = scale;
    p.edge_factor = edge_factor;
    p.seed = seed;
    return p;
  }
};

namespace detail {

/// One R-MAT edge: descend `scale` levels of the quadtree.
inline std::pair<std::uint64_t, std::uint64_t> rmat_edge(
    const RmatParams& p, Xoshiro256& rng) {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
  for (int level = 0; level < p.scale; ++level) {
    const double r = rng.next_double();
    row <<= 1;
    col <<= 1;
    if (r < p.a) {
      // top-left: nothing to add
    } else if (r < p.a + p.b) {
      col |= 1;
    } else if (r < p.a + p.b + p.c) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  return {row, col};
}

}  // namespace detail

/// Generate the matrix as CSR with duplicates combined and rows sorted.
/// Values are uniform in (0, 1]; structure is what matters for SpGEMM.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> rmat_matrix(const RmatParams& p) {
  const std::uint64_t n = 1ULL << p.scale;
  const std::uint64_t edges =
      n * static_cast<std::uint64_t>(p.edge_factor);

  CooMatrix<IT, VT> coo;
  coo.nrows = static_cast<IT>(n);
  coo.ncols = static_cast<IT>(n);
  const std::size_t total =
      static_cast<std::size_t>(edges) * (p.symmetric ? 2 : 1);
  coo.rows.resize(total);
  coo.cols.resize(total);
  coo.vals.resize(total);

  // Fixed 64-way seed blocking: determinism does not depend on the OpenMP
  // thread count because each block re-derives its own stream.
  constexpr std::uint64_t kBlocks = 64;
  const std::uint64_t per_block = (edges + kBlocks - 1) / kBlocks;
#pragma omp parallel for schedule(static)
  for (std::uint64_t blk = 0; blk < kBlocks; ++blk) {
    SplitMix64 seeder(p.seed + 0x1234567ULL * (blk + 1));
    Xoshiro256 rng(seeder.next());
    const std::uint64_t begin = blk * per_block;
    const std::uint64_t end = begin + per_block < edges
                                  ? begin + per_block
                                  : edges;
    for (std::uint64_t e = begin; e < end; ++e) {
      const auto [row, col] = detail::rmat_edge(p, rng);
      const double v = rng.next_double();
      const std::size_t slot =
          static_cast<std::size_t>(e) * (p.symmetric ? 2 : 1);
      coo.rows[slot] = static_cast<IT>(row);
      coo.cols[slot] = static_cast<IT>(col);
      coo.vals[slot] = static_cast<VT>(v + 0x1.0p-53);
      if (p.symmetric) {
        coo.rows[slot + 1] = static_cast<IT>(col);
        coo.cols[slot + 1] = static_cast<IT>(row);
        coo.vals[slot + 1] = static_cast<VT>(v + 0x1.0p-53);
      }
    }
  }
  return csr_from_coo(std::move(coo));
}

}  // namespace spgemm
