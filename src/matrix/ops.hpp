// Structural operations on CSR matrices: transpose, column permutation
// (the paper's device for producing unsorted inputs), column extraction
// (tall-skinny construction, §5.5), comparison and reductions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "matrix/csr.hpp"

namespace spgemm {

/// C = A^T.  Output rows are emitted in ascending column order (sorted).
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> transpose(const CsrMatrix<IT, VT>& a) {
  CsrMatrix<IT, VT> out(a.ncols, a.nrows);
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  out.cols.resize(nnz);
  out.vals.resize(nnz);

  // Count entries per output row (= input column).
  for (std::size_t j = 0; j < nnz; ++j) {
    ++out.rpts[static_cast<std::size_t>(a.cols[j]) + 1];
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.ncols); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  std::vector<Offset> cursor(out.rpts.begin(), out.rpts.end() - 1);
  for (IT i = 0; i < a.nrows; ++i) {
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const auto c = static_cast<std::size_t>(
          a.cols[static_cast<std::size_t>(j)]);
      const auto slot = static_cast<std::size_t>(cursor[c]++);
      out.cols[slot] = i;
      out.vals[slot] = a.vals[static_cast<std::size_t>(j)];
    }
  }
  out.sortedness = Sortedness::kSorted;
  return out;
}

/// Relabel columns by a random permutation (seeded).  This is how the paper
/// prepares "unsorted" inputs (§5.1): the structure is equivalent up to
/// column order but rows are no longer ascending.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> permute_columns_randomly(const CsrMatrix<IT, VT>& a,
                                           std::uint64_t seed) {
  std::vector<IT> perm(static_cast<std::size_t>(a.ncols));
  std::iota(perm.begin(), perm.end(), IT{0});
  SplitMix64 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  CsrMatrix<IT, VT> out = a;
  for (auto& c : out.cols) c = perm[static_cast<std::size_t>(c)];
  out.sortedness = Sortedness::kUnsorted;
  return out;
}

/// B = A(:, selected): keep the chosen columns, compacted and relabelled to
/// 0..k-1 in the order given.  Builds the tall-skinny right-hand side of
/// §5.5 when `selected` is a random sample of columns.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> extract_columns(const CsrMatrix<IT, VT>& a,
                                  const std::vector<IT>& selected) {
  std::vector<IT> relabel(static_cast<std::size_t>(a.ncols), IT{-1});
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const IT c = selected[k];
    if (c < 0 || c >= a.ncols) {
      throw std::out_of_range("extract_columns: column out of range");
    }
    relabel[static_cast<std::size_t>(c)] = static_cast<IT>(k);
  }

  CsrMatrix<IT, VT> out(a.nrows, static_cast<IT>(selected.size()));
  for (IT i = 0; i < a.nrows; ++i) {
    Offset count = 0;
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      if (relabel[static_cast<std::size_t>(
              a.cols[static_cast<std::size_t>(j)])] >= 0) {
        ++count;
      }
    }
    out.rpts[static_cast<std::size_t>(i) + 1] = count;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.nrows); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  out.cols.resize(static_cast<std::size_t>(out.nnz()));
  out.vals.resize(static_cast<std::size_t>(out.nnz()));
  for (IT i = 0; i < a.nrows; ++i) {
    auto slot = static_cast<std::size_t>(out.row_begin(i));
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const IT nc = relabel[static_cast<std::size_t>(
          a.cols[static_cast<std::size_t>(j)])];
      if (nc >= 0) {
        out.cols[slot] = nc;
        out.vals[slot] = a.vals[static_cast<std::size_t>(j)];
        ++slot;
      }
    }
  }
  // Relabelling is order-preserving only if `selected` was ascending.
  out.sortedness = std::is_sorted(selected.begin(), selected.end())
                       ? a.sortedness
                       : Sortedness::kUnsorted;
  return out;
}

/// Uniform random sample (without replacement) of k columns, ascending.
template <IndexType IT>
std::vector<IT> sample_columns(IT ncols, IT k, std::uint64_t seed) {
  std::vector<IT> all(static_cast<std::size_t>(ncols));
  std::iota(all.begin(), all.end(), IT{0});
  SplitMix64 rng(seed);
  for (IT i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   rng.next_below(static_cast<std::uint64_t>(ncols - i));
    std::swap(all[static_cast<std::size_t>(i)], all[j]);
  }
  all.resize(static_cast<std::size_t>(k));
  std::sort(all.begin(), all.end());
  return all;
}

/// Numeric equality of two matrices allowing unsorted rows and rounding.
/// Rows are compared as (column, value) multisets with |a-b| <=
/// tol * max(1, |a|, |b|) per entry; explicit zeros are NOT dropped.
template <IndexType IT, ValueType VT>
bool approx_equal(const CsrMatrix<IT, VT>& a, const CsrMatrix<IT, VT>& b,
                  double tol = 1e-9) {
  if (a.nrows != b.nrows || a.ncols != b.ncols) return false;
  for (IT i = 0; i < a.nrows; ++i) {
    if (a.row_nnz(i) != b.row_nnz(i)) return false;
    const auto len = static_cast<std::size_t>(a.row_nnz(i));
    std::vector<std::pair<IT, VT>> ra(len), rb(len);
    for (std::size_t j = 0; j < len; ++j) {
      const auto pa = static_cast<std::size_t>(a.row_begin(i)) + j;
      const auto pb = static_cast<std::size_t>(b.row_begin(i)) + j;
      ra[j] = {a.cols[pa], a.vals[pa]};
      rb[j] = {b.cols[pb], b.vals[pb]};
    }
    auto by_col = [](const auto& x, const auto& y) {
      return x.first < y.first;
    };
    std::sort(ra.begin(), ra.end(), by_col);
    std::sort(rb.begin(), rb.end(), by_col);
    for (std::size_t j = 0; j < len; ++j) {
      if (ra[j].first != rb[j].first) return false;
      const double va = static_cast<double>(ra[j].second);
      const double vb = static_cast<double>(rb[j].second);
      const double scale =
          std::max({1.0, std::abs(va), std::abs(vb)});
      if (std::abs(va - vb) > tol * scale) return false;
    }
  }
  return true;
}

/// sum over nonzeros of mask of (C .* mask): the masked reduction used by
/// triangle counting (sum of wedge counts over actual edges).  Both inputs
/// may be unsorted.
template <IndexType IT, ValueType VT>
double masked_sum(const CsrMatrix<IT, VT>& c, const CsrMatrix<IT, VT>& mask) {
  if (c.nrows != mask.nrows || c.ncols != mask.ncols) {
    throw std::invalid_argument("masked_sum: dimension mismatch");
  }
  double total = 0.0;
  std::vector<double> dense;
#pragma omp parallel private(dense) reduction(+ : total)
  {
    dense.assign(static_cast<std::size_t>(c.ncols), 0.0);
#pragma omp for schedule(dynamic, 128)
    for (IT i = 0; i < c.nrows; ++i) {
      for (Offset j = c.row_begin(i); j < c.row_end(i); ++j) {
        dense[static_cast<std::size_t>(c.cols[static_cast<std::size_t>(j)])] =
            static_cast<double>(c.vals[static_cast<std::size_t>(j)]);
      }
      for (Offset j = mask.row_begin(i); j < mask.row_end(i); ++j) {
        total += dense[static_cast<std::size_t>(
            mask.cols[static_cast<std::size_t>(j)])];
      }
      for (Offset j = c.row_begin(i); j < c.row_end(i); ++j) {
        dense[static_cast<std::size_t>(c.cols[static_cast<std::size_t>(j)])] =
            0.0;
      }
    }
  }
  return total;
}

}  // namespace spgemm
