// Triangle-counting preprocessing (paper §5.6): reorder the vertices of an
// undirected graph by increasing degree, then split the reordered adjacency
// matrix A into strictly-lower L and strictly-upper U so that L*U generates
// all wedges through each vertex's lower-numbered neighbours.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/types.hpp"
#include "matrix/csr.hpp"

namespace spgemm {

template <IndexType IT, ValueType VT>
struct TriangularSplit {
  CsrMatrix<IT, VT> reordered;  ///< A after symmetric permutation
  CsrMatrix<IT, VT> lower;      ///< strictly lower triangle of reordered
  CsrMatrix<IT, VT> upper;      ///< strictly upper triangle of reordered
};

/// Symmetric permutation of a square matrix: B = P A P^T with
/// B[p(i)][p(j)] = A[i][j], where p = perm[i] is the new label of old
/// vertex i.  Output rows are sorted.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> symmetric_permute(const CsrMatrix<IT, VT>& a,
                                    const std::vector<IT>& perm) {
  CsrMatrix<IT, VT> out(a.nrows, a.ncols);
  // Count: new row perm[i] receives row i's entries.
  for (IT i = 0; i < a.nrows; ++i) {
    out.rpts[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) +
             1] = a.row_nnz(i);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.nrows); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  out.cols.resize(static_cast<std::size_t>(a.nnz()));
  out.vals.resize(static_cast<std::size_t>(a.nnz()));
  for (IT i = 0; i < a.nrows; ++i) {
    const IT ni = perm[static_cast<std::size_t>(i)];
    auto slot = static_cast<std::size_t>(out.row_begin(ni));
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      out.cols[slot] = perm[static_cast<std::size_t>(
          a.cols[static_cast<std::size_t>(j)])];
      out.vals[slot] = a.vals[static_cast<std::size_t>(j)];
      ++slot;
    }
  }
  out.sortedness = Sortedness::kUnsorted;
  out.sort_rows();
  return out;
}

/// Permutation that relabels vertices in increasing-degree order.
template <IndexType IT, ValueType VT>
std::vector<IT> degree_order(const CsrMatrix<IT, VT>& a) {
  std::vector<IT> by_degree(static_cast<std::size_t>(a.nrows));
  std::iota(by_degree.begin(), by_degree.end(), IT{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](IT x, IT y) { return a.row_nnz(x) < a.row_nnz(y); });
  std::vector<IT> perm(static_cast<std::size_t>(a.nrows));
  for (std::size_t rank = 0; rank < by_degree.size(); ++rank) {
    perm[static_cast<std::size_t>(by_degree[rank])] = static_cast<IT>(rank);
  }
  return perm;
}

/// Extract the strictly lower (keep_lower=true) or strictly upper triangle.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> triangle_part(const CsrMatrix<IT, VT>& a, bool keep_lower) {
  CsrMatrix<IT, VT> out(a.nrows, a.ncols);
  for (IT i = 0; i < a.nrows; ++i) {
    Offset count = 0;
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const IT c = a.cols[static_cast<std::size_t>(j)];
      if (keep_lower ? (c < i) : (c > i)) ++count;
    }
    out.rpts[static_cast<std::size_t>(i) + 1] = count;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.nrows); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  out.cols.resize(static_cast<std::size_t>(out.nnz()));
  out.vals.resize(static_cast<std::size_t>(out.nnz()));
  for (IT i = 0; i < a.nrows; ++i) {
    auto slot = static_cast<std::size_t>(out.row_begin(i));
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const IT c = a.cols[static_cast<std::size_t>(j)];
      if (keep_lower ? (c < i) : (c > i)) {
        out.cols[slot] = c;
        out.vals[slot] = a.vals[static_cast<std::size_t>(j)];
        ++slot;
      }
    }
  }
  out.sortedness = a.sortedness;
  return out;
}

/// Full preprocessing pipeline: degree reorder, then split A = L + U
/// (diagonal entries are dropped; they carry no triangle information).
template <IndexType IT, ValueType VT>
TriangularSplit<IT, VT> prepare_triangle_split(const CsrMatrix<IT, VT>& a) {
  TriangularSplit<IT, VT> out;
  out.reordered = symmetric_permute(a, degree_order(a));
  out.lower = triangle_part(out.reordered, /*keep_lower=*/true);
  out.upper = triangle_part(out.reordered, /*keep_lower=*/false);
  return out;
}

}  // namespace spgemm
