// Matrix and multiply statistics: flop counts, compression ratio, degree
// distribution summaries.  These drive the recipe (Table 4), the analytic
// cost model (§4.2.4) and the per-figure bench reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/types.hpp"
#include "matrix/csr.hpp"
#include "parallel/rows_to_threads.hpp"

namespace spgemm {

/// Total scalar multiplications of C = A*B (paper: "flop"); each nonzero
/// product counts once (the paper reports 2*flop/time as FLOPS; see
/// bench/ for the convention used there).
template <IndexType IT, ValueType VT>
Offset count_flops(const CsrMatrix<IT, VT>& a, const CsrMatrix<IT, VT>& b) {
  Offset total = 0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (IT i = 0; i < a.nrows; ++i) {
    Offset acc = 0;
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const auto k = static_cast<std::size_t>(
          a.cols[static_cast<std::size_t>(j)]);
      acc += b.rpts[k + 1] - b.rpts[k];
    }
    total += acc;
  }
  return total;
}

/// Degree (row-nnz) distribution summary of a matrix.
struct DegreeStats {
  double mean = 0.0;
  double stddev = 0.0;
  Offset max = 0;
  /// max/mean; >~8 indicates the skewed regime the paper calls "Skewed".
  [[nodiscard]] double skew() const {
    return mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
  }
};

template <IndexType IT, ValueType VT>
DegreeStats degree_stats(const CsrMatrix<IT, VT>& a) {
  DegreeStats s;
  if (a.nrows == 0) return s;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (IT i = 0; i < a.nrows; ++i) {
    const auto d = static_cast<double>(a.row_nnz(i));
    sum += d;
    sum_sq += d * d;
    s.max = std::max(s.max, a.row_nnz(i));
  }
  const auto n = static_cast<double>(a.nrows);
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum_sq / n - s.mean * s.mean));
  return s;
}

/// Everything the recipe and the cost model need to know about a multiply,
/// computable without running it (compression ratio needs nnz(C), which the
/// caller supplies after a symbolic pass or an actual multiply).
struct MultiplyProfile {
  Offset flop = 0;         ///< scalar multiplications
  Offset nnz_out = 0;      ///< nonzeros of the product (0 = unknown)
  double mean_row_nnz_a = 0.0;
  double skew_a = 0.0;     ///< max/mean row degree of A

  /// flop / nnz(C), the paper's compression ratio (CR).
  [[nodiscard]] double compression_ratio() const {
    return nnz_out > 0 ? static_cast<double>(flop) /
                             static_cast<double>(nnz_out)
                       : 0.0;
  }
};

template <IndexType IT, ValueType VT>
MultiplyProfile profile_multiply(const CsrMatrix<IT, VT>& a,
                                 const CsrMatrix<IT, VT>& b,
                                 Offset nnz_out = 0) {
  MultiplyProfile p;
  p.flop = count_flops(a, b);
  p.nnz_out = nnz_out;
  const DegreeStats da = degree_stats(a);
  p.mean_row_nnz_a = da.mean;
  p.skew_a = da.skew();
  return p;
}

}  // namespace spgemm
