// Compressed Sparse Rows — the operational format of every kernel.
//
// Row pointers are always 64-bit (see common/types.hpp).  Sortedness of
// column indices within rows is tracked explicitly because the paper treats
// sorted and unsorted CSR as distinct operating modes with materially
// different performance (Table 1, §5.4.4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "matrix/coo.hpp"
#include "mem/default_init.hpp"

namespace spgemm {

template <IndexType IT, ValueType VT>
struct CsrMatrix {
  using index_type = IT;
  using value_type = VT;

  IT nrows = 0;
  IT ncols = 0;
  /// Body arrays use mem::Buffer: resize leaves new elements uninitialized,
  /// so sizing the output costs no zeroing pass and the writing thread gets
  /// the first touch (NUMA placement follows the flop partition).
  mem::Buffer<Offset> rpts;  ///< length nrows+1
  mem::Buffer<IT> cols;      ///< length nnz
  mem::Buffer<VT> vals;      ///< length nnz
  Sortedness sortedness = Sortedness::kSorted;

  CsrMatrix() : rpts(1, 0) {}
  CsrMatrix(IT rows_, IT cols_)
      : nrows(rows_), ncols(cols_),
        rpts(static_cast<std::size_t>(rows_) + 1, 0) {}

  [[nodiscard]] Offset nnz() const { return rpts.empty() ? 0 : rpts.back(); }
  [[nodiscard]] bool claims_sorted() const {
    return sortedness == Sortedness::kSorted;
  }

  [[nodiscard]] Offset row_begin(IT i) const {
    return rpts[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Offset row_end(IT i) const {
    return rpts[static_cast<std::size_t>(i) + 1];
  }
  [[nodiscard]] Offset row_nnz(IT i) const {
    return row_end(i) - row_begin(i);
  }

  /// Structural invariants; throws on violation.  If the matrix claims to
  /// be sorted, ascending column order within rows is enforced too.
  void validate() const {
    if (rpts.size() != static_cast<std::size_t>(nrows) + 1) {
      throw std::invalid_argument("CsrMatrix: rpts length != nrows+1");
    }
    if (rpts.front() != 0) {
      throw std::invalid_argument("CsrMatrix: rpts[0] != 0");
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(nrows); ++i) {
      if (rpts[i] > rpts[i + 1]) {
        throw std::invalid_argument("CsrMatrix: rpts not monotone");
      }
    }
    if (static_cast<std::size_t>(rpts.back()) != cols.size() ||
        cols.size() != vals.size()) {
      throw std::invalid_argument("CsrMatrix: nnz arrays disagree");
    }
    for (IT i = 0; i < nrows; ++i) {
      for (Offset j = row_begin(i); j < row_end(i); ++j) {
        if (cols[static_cast<std::size_t>(j)] < 0 ||
            cols[static_cast<std::size_t>(j)] >= ncols) {
          throw std::out_of_range("CsrMatrix: column index out of bounds");
        }
        if (claims_sorted() && j > row_begin(i) &&
            cols[static_cast<std::size_t>(j - 1)] >=
                cols[static_cast<std::size_t>(j)]) {
          throw std::invalid_argument(
              "CsrMatrix: claims sorted but row is not ascending");
        }
      }
    }
  }

  /// True iff every row is ascending (ignores the sortedness claim).
  [[nodiscard]] bool rows_are_ascending() const {
    for (IT i = 0; i < nrows; ++i) {
      for (Offset j = row_begin(i) + 1; j < row_end(i); ++j) {
        if (cols[static_cast<std::size_t>(j - 1)] >=
            cols[static_cast<std::size_t>(j)]) {
          return false;
        }
      }
    }
    return true;
  }

  /// Sort every row by column index (values permuted alongside) and mark
  /// the matrix sorted.
  void sort_rows() {
    std::vector<std::pair<IT, VT>> buffer;
#pragma omp parallel for schedule(dynamic, 64) private(buffer)
    for (IT i = 0; i < nrows; ++i) {
      const Offset begin = row_begin(i);
      const Offset len = row_nnz(i);
      if (len < 2) continue;
      buffer.resize(static_cast<std::size_t>(len));
      for (Offset j = 0; j < len; ++j) {
        buffer[static_cast<std::size_t>(j)] = {
            cols[static_cast<std::size_t>(begin + j)],
            vals[static_cast<std::size_t>(begin + j)]};
      }
      std::sort(buffer.begin(), buffer.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (Offset j = 0; j < len; ++j) {
        cols[static_cast<std::size_t>(begin + j)] =
            buffer[static_cast<std::size_t>(j)].first;
        vals[static_cast<std::size_t>(begin + j)] =
            buffer[static_cast<std::size_t>(j)].second;
      }
    }
    sortedness = Sortedness::kSorted;
  }

  /// Dense row-major copy; intended for small test matrices only.
  [[nodiscard]] std::vector<VT> to_dense() const {
    std::vector<VT> dense(static_cast<std::size_t>(nrows) *
                              static_cast<std::size_t>(ncols),
                          VT{0});
    for (IT i = 0; i < nrows; ++i) {
      for (Offset j = row_begin(i); j < row_end(i); ++j) {
        dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(ncols) +
              static_cast<std::size_t>(cols[static_cast<std::size_t>(j)])] +=
            vals[static_cast<std::size_t>(j)];
      }
    }
    return dense;
  }
};

/// Build a CSR from COO triplets (sorted, duplicates combined).
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> csr_from_coo(CooMatrix<IT, VT> coo) {
  coo.validate();
  coo.sort_and_combine();
  CsrMatrix<IT, VT> out(coo.nrows, coo.ncols);
  const std::size_t nnz = coo.nnz();
  out.cols.resize(nnz);
  out.vals.resize(nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    ++out.rpts[static_cast<std::size_t>(coo.rows[i]) + 1];
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(coo.nrows); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  for (std::size_t i = 0; i < nnz; ++i) {
    out.cols[i] = coo.cols[i];
    out.vals[i] = coo.vals[i];
  }
  out.sortedness = Sortedness::kSorted;
  return out;
}

/// Convenience builder from explicit triplet arrays (tests, examples).
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> csr_from_triplets(
    IT nrows, IT ncols,
    const std::vector<std::tuple<IT, IT, VT>>& triplets) {
  CooMatrix<IT, VT> coo;
  coo.nrows = nrows;
  coo.ncols = ncols;
  coo.reserve(triplets.size());
  for (const auto& [r, c, v] : triplets) coo.push_back(r, c, v);
  return csr_from_coo(std::move(coo));
}

/// n-by-n identity.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> csr_identity(IT n) {
  CsrMatrix<IT, VT> out(n, n);
  out.cols.resize(static_cast<std::size_t>(n));
  out.vals.assign(static_cast<std::size_t>(n), VT{1});
  for (IT i = 0; i < n; ++i) {
    out.rpts[static_cast<std::size_t>(i) + 1] = i + 1;
    out.cols[static_cast<std::size_t>(i)] = i;
  }
  return out;
}

}  // namespace spgemm
