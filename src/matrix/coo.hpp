// Coordinate-format sparse matrix: the assembly format.
//
// Generators and the MatrixMarket reader emit COO triplets; CsrMatrix is
// built from a COO by sorting and combining duplicates.  COO is never used
// inside kernels.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace spgemm {

template <IndexType IT, ValueType VT>
struct CooMatrix {
  IT nrows = 0;
  IT ncols = 0;
  std::vector<IT> rows;
  std::vector<IT> cols;
  std::vector<VT> vals;

  [[nodiscard]] std::size_t nnz() const { return rows.size(); }

  /// Append one entry (no dedup; combine happens at CSR conversion).
  void push_back(IT r, IT c, VT v) {
    rows.push_back(r);
    cols.push_back(c);
    vals.push_back(v);
  }

  void reserve(std::size_t n) {
    rows.reserve(n);
    cols.reserve(n);
    vals.reserve(n);
  }

  /// Bounds-check every entry; throws std::out_of_range on violation.
  void validate() const {
    if (rows.size() != cols.size() || rows.size() != vals.size()) {
      throw std::invalid_argument("CooMatrix: parallel arrays disagree");
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] < 0 || rows[i] >= nrows || cols[i] < 0 ||
          cols[i] >= ncols) {
        throw std::out_of_range("CooMatrix: entry out of bounds");
      }
    }
  }

  /// Sort entries by (row, col) and sum duplicates in place.
  void sort_and_combine() {
    const std::size_t n = nnz();
    if (n == 0) return;
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (rows[a] != rows[b]) return rows[a] < rows[b];
                return cols[a] < cols[b];
              });

    std::vector<IT> new_rows;
    std::vector<IT> new_cols;
    std::vector<VT> new_vals;
    new_rows.reserve(n);
    new_cols.reserve(n);
    new_vals.reserve(n);
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t p = order[idx];
      if (!new_rows.empty() && new_rows.back() == rows[p] &&
          new_cols.back() == cols[p]) {
        new_vals.back() += vals[p];
      } else {
        new_rows.push_back(rows[p]);
        new_cols.push_back(cols[p]);
        new_vals.push_back(vals[p]);
      }
    }
    rows = std::move(new_rows);
    cols = std::move(new_cols);
    vals = std::move(new_vals);
  }
};

}  // namespace spgemm
