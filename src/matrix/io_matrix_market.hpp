// MatrixMarket (.mtx) reader/writer.
//
// SuiteSparse matrices — the paper's Table 2 corpus — ship in this format.
// Supported: `matrix coordinate` with field real/integer/pattern and
// symmetry general/symmetric/skew-symmetric.  Pattern entries get value 1.
// Symmetric inputs are expanded to full storage (both triangles), matching
// how SpGEMM codes consume them.
//
// Hardened against hostile/corrupt files: every malformed condition —
// truncated banner or body, overflowing size line, an entry count larger
// than the matrix could hold, out-of-range (or 0-based) indices, NaN or
// infinite values — throws SpGemmError{kBadInput} (a runtime_error), and a
// failed read never leaks partial state: the matrix is built locally and
// returned only on full success.
#pragma once

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace spgemm::io {

/// Parsed MatrixMarket header.
struct MmHeader {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
  std::int64_t nrows = 0;
  std::int64_t ncols = 0;
  std::int64_t entries = 0;
};

/// Parse the banner + size line from a stream positioned at the top.
/// Throws SpGemmError{kBadInput} on malformed input.
MmHeader read_mm_header(std::istream& in);

template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> read_matrix_market(std::istream& in) {
  const MmHeader h = read_mm_header(in);
  CooMatrix<IT, VT> coo;
  coo.nrows = static_cast<IT>(h.nrows);
  coo.ncols = static_cast<IT>(h.ncols);
  coo.reserve(static_cast<std::size_t>(h.entries) *
              ((h.symmetric || h.skew) ? 2 : 1));

  std::string line;
  std::int64_t seen = 0;
  while (seen < h.entries && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    std::int64_t r = 0;
    std::int64_t c = 0;
    double v = 1.0;
    ls >> r >> c;
    if (!h.pattern) ls >> v;
    if (ls.fail()) {
      throw SpGemmError(ErrorCode::kBadInput,
                        "matrix market: malformed entry line: " + line);
    }
    // Indices are 1-based on disk; 0 or past the declared shape means a
    // corrupt file, and silently wrapping them would corrupt the CSR.
    if (r < 1 || r > h.nrows || c < 1 || c > h.ncols) {
      throw SpGemmError(ErrorCode::kBadInput,
                        "matrix market: entry index out of range: " + line);
    }
    if (!std::isfinite(v)) {
      throw SpGemmError(ErrorCode::kBadInput,
                        "matrix market: non-finite value: " + line);
    }
    ++seen;
    const IT ri = static_cast<IT>(r - 1);
    const IT ci = static_cast<IT>(c - 1);
    coo.push_back(ri, ci, static_cast<VT>(v));
    if ((h.symmetric || h.skew) && ri != ci) {
      coo.push_back(ci, ri, static_cast<VT>(h.skew ? -v : v));
    }
  }
  if (seen != h.entries) {
    throw SpGemmError(ErrorCode::kBadInput, "matrix market: truncated file");
  }
  return csr_from_coo(std::move(coo));
}

template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw SpGemmError(ErrorCode::kBadInput, "cannot open " + path);
  }
  return read_matrix_market<IT, VT>(in);
}

/// Write in `coordinate real general` format (1-based, one entry per line).
template <IndexType IT, ValueType VT>
void write_matrix_market(std::ostream& out, const CsrMatrix<IT, VT>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.nrows << ' ' << a.ncols << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (IT i = 0; i < a.nrows; ++i) {
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      out << (i + 1) << ' ' << (a.cols[static_cast<std::size_t>(j)] + 1)
          << ' ' << static_cast<double>(a.vals[static_cast<std::size_t>(j)])
          << '\n';
    }
  }
}

template <IndexType IT, ValueType VT>
void write_matrix_market(const std::string& path, const CsrMatrix<IT, VT>& a) {
  std::ofstream out(path);
  if (!out) {
    throw SpGemmError(ErrorCode::kBadInput,
                      "cannot open " + path + " for writing");
  }
  write_matrix_market(out, a);
}

}  // namespace spgemm::io
