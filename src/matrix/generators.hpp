// Structured synthetic generators besides R-MAT: banded FEM-like matrices
// and exact-size uniform random matrices.  These back the SuiteSparse
// proxy registry (see suitesparse_proxy.hpp and the DESIGN.md
// substitutions table).
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace spgemm {

/// Banded matrix: row i holds `degree` nonzeros at columns i-degree/2 ..
/// i+degree/2 (clipped to [0, n)), mimicking the regular local coupling of
/// FEM/mesh matrices.  A^2 of such a matrix has ~2x the bandwidth, giving
/// the high compression ratios (~degree/4) of the paper's FEM inputs.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> banded_matrix(IT n, IT degree, std::uint64_t seed = 42) {
  degree = std::min(degree, n);
  CsrMatrix<IT, VT> out(n, n);
  // Window [lo, lo+degree) is slid back from the borders so every row holds
  // exactly `degree` nonzeros (matching the constant row density of FEM
  // stiffness matrices).
  const IT half = degree / 2;
  const auto window_lo = [n, half, degree](IT i) {
    IT lo = i >= half ? i - half : IT{0};
    if (lo + degree > n) lo = n - degree;
    return lo;
  };
  for (IT i = 0; i < n; ++i) {
    out.rpts[static_cast<std::size_t>(i) + 1] = degree;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  out.cols.resize(static_cast<std::size_t>(out.nnz()));
  out.vals.resize(static_cast<std::size_t>(out.nnz()));
#pragma omp parallel for schedule(static)
  for (IT i = 0; i < n; ++i) {
    SplitMix64 rng(seed ^ (0x9e3779b97f4a7c15ULL *
                           (static_cast<std::uint64_t>(i) + 1)));
    const IT lo = window_lo(i);
    const IT hi = lo + degree;
    auto slot = static_cast<std::size_t>(out.row_begin(i));
    for (IT c = lo; c < hi; ++c) {
      out.cols[slot] = c;
      out.vals[slot] = static_cast<VT>(rng.next_double() + 0x1.0p-53);
      ++slot;
    }
  }
  out.sortedness = Sortedness::kSorted;
  return out;
}

/// Scattered-band matrix: row i holds exactly `degree` nonzeros at distinct
/// random columns inside a window of `window` columns around the diagonal.
/// Generalizes banded_matrix (window == degree) toward the fuzzier local
/// coupling of real FEM/mesh matrices: the compression ratio of A^2 is
/// ~degree^2 / (2*window), so the window width tunes CR independently of
/// the density — which is how the SuiteSparse proxies are calibrated to
/// the paper's Table 2 statistics.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> scattered_band_matrix(IT n, IT degree, IT window,
                                        std::uint64_t seed = 42) {
  degree = std::min(degree, n);
  window = std::clamp(window, degree, n);
  CsrMatrix<IT, VT> out(n, n);
  for (IT i = 0; i < n; ++i) {
    out.rpts[static_cast<std::size_t>(i) + 1] = degree;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    out.rpts[i + 1] += out.rpts[i];
  }
  out.cols.resize(static_cast<std::size_t>(out.nnz()));
  out.vals.resize(static_cast<std::size_t>(out.nnz()));
  const IT half = window / 2;
#pragma omp parallel
  {
    std::vector<IT> pool(static_cast<std::size_t>(window));
#pragma omp for schedule(static)
    for (IT i = 0; i < n; ++i) {
      SplitMix64 rng(seed ^ (0x9e3779b97f4a7c15ULL *
                             (static_cast<std::uint64_t>(i) + 1)));
      IT lo = i >= half ? i - half : IT{0};
      if (lo + window > n) lo = n - window;
      // Partial Fisher-Yates: the first `degree` pool entries become the
      // row's distinct columns.
      std::iota(pool.begin(), pool.end(), lo);
      for (IT k = 0; k < degree; ++k) {
        const auto j = static_cast<std::size_t>(k) +
                       rng.next_below(static_cast<std::uint64_t>(window - k));
        std::swap(pool[static_cast<std::size_t>(k)], pool[j]);
      }
      std::sort(pool.begin(), pool.begin() + degree);
      auto slot = static_cast<std::size_t>(out.row_begin(i));
      for (IT k = 0; k < degree; ++k) {
        out.cols[slot] = pool[static_cast<std::size_t>(k)];
        out.vals[slot] = static_cast<VT>(rng.next_double() + 0x1.0p-53);
        ++slot;
      }
    }
  }
  out.sortedness = Sortedness::kSorted;
  return out;
}

/// Uniform random matrix with exactly-n dimensions (not constrained to
/// powers of two like R-MAT) and ~`nnz_target` nonzeros before dedup.
template <IndexType IT, ValueType VT>
CsrMatrix<IT, VT> uniform_random_matrix(IT nrows, IT ncols, Offset nnz_target,
                                        std::uint64_t seed = 42) {
  CooMatrix<IT, VT> coo;
  coo.nrows = nrows;
  coo.ncols = ncols;
  const auto total = static_cast<std::size_t>(nnz_target);
  coo.rows.resize(total);
  coo.cols.resize(total);
  coo.vals.resize(total);
  constexpr std::uint64_t kBlocks = 64;
  const std::size_t per_block = (total + kBlocks - 1) / kBlocks;
#pragma omp parallel for schedule(static)
  for (std::uint64_t blk = 0; blk < kBlocks; ++blk) {
    SplitMix64 seeder(seed + 0xABCDEF * (blk + 1));
    Xoshiro256 rng(seeder.next());
    const std::size_t begin = static_cast<std::size_t>(blk) * per_block;
    const std::size_t end = std::min(total, begin + per_block);
    for (std::size_t e = begin; e < end; ++e) {
      coo.rows[e] = static_cast<IT>(
          rng.next_below(static_cast<std::uint64_t>(nrows)));
      coo.cols[e] = static_cast<IT>(
          rng.next_below(static_cast<std::uint64_t>(ncols)));
      coo.vals[e] = static_cast<VT>(rng.next_double() + 0x1.0p-53);
    }
  }
  return csr_from_coo(std::move(coo));
}

}  // namespace spgemm
