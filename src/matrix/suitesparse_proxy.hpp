// Deterministic synthetic stand-ins for the 26 SuiteSparse matrices of the
// paper's Table 2.
//
// This environment has no access to sparse.tamu.edu, so each matrix is
// replaced by a generator from the structural family that drives its
// SpGEMM behaviour (see DESIGN.md substitutions): banded FEM-like matrices
// for the mesh/stiffness inputs (high compression ratio, uniform rows),
// uniform random matrices for the cage/economics class (low CR), and
// power-law R-MAT for the web/patent/circuit graphs (low CR, skewed rows).
// The registry records the paper's reported n, nnz(A), flop(A^2) and
// nnz(A^2) so EXPERIMENTS.md can put proxy and original side by side.
//
// By default the largest instances are dimension-scaled to fit a laptop
// (cage15's A^2 alone needs ~15 GB); pass full_scale=true for paper sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace spgemm::proxy {

enum class Family {
  kBanded,    ///< FEM/mesh stiffness-like (regular, high CR)
  kUniform,   ///< uniform random (ER-like, low CR)
  kPowerLaw,  ///< skewed web/patent/circuit graphs (R-MAT G500)
};

struct ProxyEntry {
  std::string name;
  Family family;
  /// Paper-reported statistics (Table 2), all in raw counts.
  std::int64_t n;
  std::int64_t nnz;
  double flop_sq;    ///< flop(A^2)
  double nnz_sq;     ///< nnz(A^2)
  /// Generator parameter: band degree (banded) or edge factor (others).
  int degree;
};

/// The 26 matrices of Table 2, in the paper's (alphabetical) order.
const std::vector<ProxyEntry>& table2();

/// Find an entry by name; throws std::out_of_range when unknown.
const ProxyEntry& find(const std::string& name);

/// Default cap on generated dimension when full_scale == false.
inline constexpr std::int64_t kScaledDimensionCap = 1 << 17;

/// Generate the proxy matrix.  Deterministic in (entry, seed).  When
/// full_scale is false the dimension is capped at kScaledDimensionCap with
/// the entry's density preserved.
CsrMatrix<std::int32_t, double> generate(const ProxyEntry& entry,
                                         bool full_scale = false,
                                         std::uint64_t seed = 42);

/// The dimension generate() will actually use.
std::int64_t effective_dimension(const ProxyEntry& entry, bool full_scale);

const char* family_name(Family family);

}  // namespace spgemm::proxy
