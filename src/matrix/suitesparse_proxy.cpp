#include "matrix/suitesparse_proxy.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "matrix/generators.hpp"
#include "matrix/rmat.hpp"

namespace spgemm::proxy {
namespace {

std::vector<ProxyEntry> build_table2() {
  // Paper Table 2 statistics (converted from millions to raw counts);
  // `degree` is round(nnz/n), the generator's density parameter.
  // Family assignment follows the matrix's origin: FEM/mesh -> banded,
  // cage/economics/combinatorial -> uniform, web/patents/circuit -> power law.
  return {
      {"2cubes_sphere", Family::kBanded, 101492, 1647264, 27.45e6, 8.97e6, 16},
      {"cage12", Family::kBanded, 130228, 2032536, 34.61e6, 15.23e6, 16},
      {"cage15", Family::kBanded, 5154859, 99199551, 2078.63e6, 929.02e6, 19},
      {"cant", Family::kBanded, 62451, 4007383, 269.49e6, 17.44e6, 64},
      {"conf5_4-8x8-05", Family::kBanded, 49152, 1916928, 74.76e6, 10.91e6,
       39},
      {"consph", Family::kBanded, 83334, 6010480, 463.85e6, 26.54e6, 72},
      {"cop20k_A", Family::kBanded, 121192, 2624331, 79.88e6, 18.71e6, 22},
      {"delaunay_n24", Family::kBanded, 16777216, 100663202, 633.91e6,
       347.32e6, 6},
      {"filter3D", Family::kBanded, 106437, 2707179, 85.96e6, 20.16e6, 25},
      {"hood", Family::kBanded, 220542, 10768436, 562.03e6, 34.24e6, 49},
      {"m133-b3", Family::kUniform, 200200, 800800, 3.20e6, 3.18e6, 4},
      {"mac_econ_fwd500", Family::kUniform, 206500, 1273389, 7.56e6, 6.70e6,
       6},
      {"majorbasis", Family::kBanded, 160000, 1750416, 19.18e6, 8.24e6, 11},
      {"mario002", Family::kBanded, 389874, 2101242, 12.83e6, 6.45e6, 5},
      {"mc2depi", Family::kBanded, 525825, 2100225, 8.39e6, 5.25e6, 4},
      {"mono_500Hz", Family::kBanded, 169410, 5036288, 204.03e6, 41.38e6, 30},
      {"offshore", Family::kBanded, 259789, 4242673, 71.34e6, 23.36e6, 16},
      {"patents_main", Family::kPowerLaw, 240547, 560943, 2.60e6, 2.28e6, 2},
      {"pdb1HYS", Family::kBanded, 36417, 4344765, 555.32e6, 19.59e6, 119},
      {"poisson3Da", Family::kBanded, 13514, 352762, 11.77e6, 2.96e6, 26},
      {"pwtk", Family::kBanded, 217918, 11634424, 626.05e6, 32.77e6, 53},
      {"rma10", Family::kBanded, 46835, 2374001, 156.48e6, 7.90e6, 51},
      {"scircuit", Family::kPowerLaw, 170998, 958936, 8.68e6, 5.22e6, 6},
      {"shipsec1", Family::kBanded, 140874, 7813404, 450.64e6, 24.09e6, 55},
      {"wb-edu", Family::kPowerLaw, 9845725, 57156537, 1559.58e6, 630.08e6,
       6},
      {"webbase-1M", Family::kPowerLaw, 1000005, 3105536, 69.52e6, 51.11e6,
       3},
  };
}

std::uint64_t name_seed(const std::string& name, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const std::vector<ProxyEntry>& table2() {
  static const std::vector<ProxyEntry> entries = build_table2();
  return entries;
}

const ProxyEntry& find(const std::string& name) {
  for (const ProxyEntry& e : table2()) {
    if (e.name == name) return e;
  }
  throw std::out_of_range("unknown Table 2 matrix: " + name);
}

std::int64_t effective_dimension(const ProxyEntry& entry, bool full_scale) {
  const std::int64_t n =
      full_scale ? entry.n : std::min(entry.n, kScaledDimensionCap);
  if (entry.family == Family::kPowerLaw) {
    // R-MAT needs power-of-two dimensions; round to the nearest.
    const auto width = static_cast<int>(std::llround(
        std::log2(static_cast<double>(n))));
    return std::int64_t{1} << width;
  }
  return n;
}

CsrMatrix<std::int32_t, double> generate(const ProxyEntry& entry,
                                         bool full_scale,
                                         std::uint64_t seed) {
  const std::int64_t n = effective_dimension(entry, full_scale);
  const std::uint64_t s = name_seed(entry.name, seed);
  switch (entry.family) {
    case Family::kBanded: {
      // Window width calibrated from the paper's own Table 2 statistics:
      // a scattered band of degree d and window w has CR(A^2) ~
      // d^2/(2w) + 1/2 (the union of neighbouring windows spans ~2w
      // columns, plus the diagonal term), so inverting for the paper's CR
      // reproduces the original matrix's compression-ratio regime.
      const double paper_cr = entry.flop_sq / entry.nnz_sq;
      const double target = std::max(0.75, paper_cr - 0.5);
      const auto window = static_cast<std::int32_t>(std::llround(
          std::max<double>(entry.degree,
                           entry.degree * entry.degree / (2.0 * target))));
      return scattered_band_matrix<std::int32_t, double>(
          static_cast<std::int32_t>(n),
          static_cast<std::int32_t>(entry.degree), window, s);
    }
    case Family::kUniform:
      return uniform_random_matrix<std::int32_t, double>(
          static_cast<std::int32_t>(n), static_cast<std::int32_t>(n),
          static_cast<Offset>(n) * entry.degree, s);
    case Family::kPowerLaw: {
      const auto scale = static_cast<int>(std::countr_zero(
          static_cast<std::uint64_t>(n)));
      RmatParams p = RmatParams::g500(scale, entry.degree, s);
      return rmat_matrix<std::int32_t, double>(p);
    }
  }
  throw std::logic_error("unreachable proxy family");
}

const char* family_name(Family family) {
  switch (family) {
    case Family::kBanded:
      return "banded";
    case Family::kUniform:
      return "uniform";
    case Family::kPowerLaw:
      return "power-law";
  }
  return "?";
}

}  // namespace spgemm::proxy
