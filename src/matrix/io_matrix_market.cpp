#include "matrix/io_matrix_market.hpp"

#include <algorithm>
#include <cctype>

namespace spgemm::io {
namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

MmHeader read_mm_header(std::istream& in) {
  std::string banner;
  if (!std::getline(in, banner)) {
    throw std::runtime_error("matrix market: empty stream");
  }
  std::istringstream bs(lowercase(banner));
  std::string tag, object, format, field, symmetry;
  bs >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%matrixmarket" || object != "matrix") {
    throw std::runtime_error("matrix market: bad banner: " + banner);
  }
  if (format != "coordinate") {
    throw std::runtime_error("matrix market: only coordinate supported");
  }
  MmHeader h;
  if (field == "pattern") {
    h.pattern = true;
  } else if (field != "real" && field != "integer" && field != "double") {
    throw std::runtime_error("matrix market: unsupported field: " + field);
  }
  if (symmetry == "symmetric") {
    h.symmetric = true;
  } else if (symmetry == "skew-symmetric") {
    h.skew = true;
  } else if (symmetry != "general") {
    throw std::runtime_error("matrix market: unsupported symmetry: " +
                             symmetry);
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    ls >> h.nrows >> h.ncols >> h.entries;
    if (ls.fail() || h.nrows < 0 || h.ncols < 0 || h.entries < 0) {
      throw std::runtime_error("matrix market: bad size line: " + line);
    }
    return h;
  }
  throw std::runtime_error("matrix market: missing size line");
}

}  // namespace spgemm::io
