#include "matrix/io_matrix_market.hpp"

#include <algorithm>
#include <cctype>

namespace spgemm::io {
namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

MmHeader read_mm_header(std::istream& in) {
  std::string banner;
  if (!std::getline(in, banner)) {
    throw SpGemmError(ErrorCode::kBadInput, "matrix market: empty stream");
  }
  std::istringstream bs(lowercase(banner));
  std::string tag, object, format, field, symmetry;
  bs >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%matrixmarket" || object != "matrix") {
    throw SpGemmError(ErrorCode::kBadInput,
                      "matrix market: bad banner: " + banner);
  }
  if (format != "coordinate") {
    throw SpGemmError(ErrorCode::kBadInput,
                      "matrix market: only coordinate supported");
  }
  MmHeader h;
  if (field == "pattern") {
    h.pattern = true;
  } else if (field != "real" && field != "integer" && field != "double") {
    throw SpGemmError(ErrorCode::kBadInput,
                      "matrix market: unsupported field: " + field);
  }
  if (symmetry == "symmetric") {
    h.symmetric = true;
  } else if (symmetry == "skew-symmetric") {
    h.skew = true;
  } else if (symmetry != "general") {
    throw SpGemmError(ErrorCode::kBadInput,
                      "matrix market: unsupported symmetry: " + symmetry);
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    ls >> h.nrows >> h.ncols >> h.entries;
    // ls.fail() also covers values overflowing int64 (failbit on overflow).
    if (ls.fail() || h.nrows < 0 || h.ncols < 0 || h.entries < 0) {
      throw SpGemmError(ErrorCode::kBadInput,
                        "matrix market: bad size line: " + line);
    }
    // More entries than the shape can hold is corruption, and catching it
    // here keeps a hostile size line from driving a huge reserve().
    if (static_cast<double>(h.entries) >
        static_cast<double>(h.nrows) * static_cast<double>(h.ncols)) {
      throw SpGemmError(ErrorCode::kBadInput,
                        "matrix market: entry count exceeds matrix shape: " +
                            line);
    }
    return h;
  }
  throw SpGemmError(ErrorCode::kBadInput, "matrix market: missing size line");
}

}  // namespace spgemm::io
