// Row-tile construction for the tiled two-phase SpGEMM driver.
//
// A tile is a contiguous row range processed symbolic-then-numeric back to
// back by one thread.  Two shapes exist:
//   * static tiles: each thread chops its own flop-balanced row range
//     (Fig. 6 partition) into tiles of a fixed row count — no coordination,
//     best cache behaviour on uniform matrices;
//   * dynamic tiles: the whole row space is pre-cut into tiles of roughly
//     equal FLOP (so one dense row cannot stall a tile's owner for long)
//     and threads claim tiles off a shared atomic counter — better tail
//     behaviour on skewed matrices.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "parallel/lowbnd.hpp"

namespace spgemm::parallel {

/// Cut [0, nrows) into tiles of ~`target_flop` scalar multiplications each,
/// using the exclusive flop prefix of the partition (size nrows+1).  Every
/// tile holds at least one row, so a row whose flop exceeds the target gets
/// a tile of its own.  Returns tile boundaries: bounds[k]..bounds[k+1] is
/// tile k; bounds.front() == 0, bounds.back() == nrows.
inline std::vector<std::size_t> flop_balanced_tiles(
    const Offset* flop_prefix, std::size_t nrows, Offset target_flop) {
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  if (nrows == 0) return bounds;
  if (target_flop < 1) target_flop = 1;
  std::size_t row = 0;
  while (row < nrows) {
    const Offset target = flop_prefix[row] + target_flop;
    std::size_t next = lowbnd(flop_prefix, nrows + 1, target);
    if (next <= row) next = row + 1;  // always advance: >= 1 row per tile
    if (next > nrows) next = nrows;
    bounds.push_back(next);
    row = next;
  }
  return bounds;
}

/// Shared work queue over a pre-built tile list: threads claim tiles in
/// order with a single fetch_add.  Cheap enough to sit in the row loop —
/// one atomic per tile, not per row.
class TileClaimer {
 public:
  explicit TileClaimer(std::size_t tile_count) : count_(tile_count) {}

  /// Claim the next unprocessed tile index, or tile_count when drained.
  std::size_t claim() { return next_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  std::atomic<std::size_t> next_{0};
  std::size_t count_;
};

}  // namespace spgemm::parallel
