// Row-tile cutting for the ExecutionSchedule
// (parallel/execution_schedule.hpp).
//
// A tile is a contiguous row range processed symbolic-then-numeric back to
// back by one thread.  Tiles are cut from the exclusive flop prefix of the
// row partition so that each holds roughly `target_flop` scalar
// multiplications (a dense row cannot stall its owner for long) and never
// more than `row_cap` rows (a run of empty rows cannot balloon one tile's
// bookkeeping).  How the cut tiles are *assigned* to threads — statically,
// through a global claim counter, or through work-stealing deques — is the
// ExecutionSchedule's job, not this header's.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "parallel/lowbnd.hpp"

namespace spgemm::parallel {

/// One schedulable unit of work: a contiguous row range.
struct TileRange {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;

  [[nodiscard]] std::size_t rows() const { return row_end - row_begin; }
  bool operator==(const TileRange&) const = default;
};

/// Append tiles covering [row_begin, row_end) to `out`.  Each tile targets
/// ~`target_flop` scalar multiplications (0 = no flop bound) and holds at
/// most `row_cap` rows (0 = no row bound) but always at least one row, so a
/// row whose flop exceeds the target gets a tile of its own.  `flop_prefix`
/// is the exclusive flop prefix of the whole matrix (size nrows+1).
inline void cut_tiles(const Offset* flop_prefix, std::size_t row_begin,
                      std::size_t row_end, Offset target_flop,
                      std::size_t row_cap, std::vector<TileRange>& out) {
  std::size_t row = row_begin;
  while (row < row_end) {
    std::size_t next = row_end;
    if (target_flop > 0) {
      const Offset target = flop_prefix[row] + target_flop;
      next = lowbnd(flop_prefix, row_end + 1, target);
    }
    if (row_cap > 0 && next > row + row_cap) next = row + row_cap;
    if (next <= row) next = row + 1;  // always advance: >= 1 row per tile
    if (next > row_end) next = row_end;
    out.push_back({row, next});
    row = next;
  }
}

}  // namespace spgemm::parallel
