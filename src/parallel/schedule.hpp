// Row-loop scheduling policies.
//
// The paper's Fig. 9 ablates plain OpenMP static/dynamic/guided scheduling
// against the flop-balanced partition of Fig. 6 ("balanced"), with the
// balanced variant further split by whether per-thread temporaries use the
// "single" or "parallel" allocation scheme.  Kernels take a SchedulePolicy
// so that ablation runs through the exact same code.
#pragma once

#include <omp.h>

#include <cstddef>

#include "parallel/rows_to_threads.hpp"

namespace spgemm::parallel {

enum class SchedulePolicy {
  kStatic,            ///< #pragma omp for schedule(static)
  kDynamic,           ///< #pragma omp for schedule(dynamic)
  kGuided,            ///< #pragma omp for schedule(guided)
  kBalanced,          ///< RowsToThreads partition, "single" temp allocation
  kBalancedParallel,  ///< RowsToThreads partition, "parallel" temp allocation
};

/// How an ExecutionSchedule (parallel/execution_schedule.hpp) hands row
/// tiles to threads.
enum class TileSchedule {
  kStatic,    ///< tiles stay inside each thread's flop-balanced row range
  kDynamic,   ///< one global tile pool, claimed atomically in row order
  kStealing,  ///< per-thread deques; idle threads steal from neighbours
};

inline const char* tile_schedule_name(TileSchedule s) {
  switch (s) {
    case TileSchedule::kStatic:
      return "static-tiles";
    case TileSchedule::kDynamic:
      return "dynamic-tiles";
    case TileSchedule::kStealing:
      return "stealing-tiles";
  }
  return "?";
}

inline const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kStatic:
      return "static";
    case SchedulePolicy::kDynamic:
      return "dynamic";
    case SchedulePolicy::kGuided:
      return "guided";
    case SchedulePolicy::kBalanced:
      return "balanced single";
    case SchedulePolicy::kBalancedParallel:
      return "balanced parallel";
  }
  return "?";
}

inline bool is_balanced(SchedulePolicy p) {
  return p == SchedulePolicy::kBalanced ||
         p == SchedulePolicy::kBalancedParallel;
}

/// Run `body(row)` over rows [0, nrows) under an OpenMP loop with the given
/// plain policy.  Used by kernels when the policy is not balanced.
template <typename Body>
void omp_for_rows(SchedulePolicy policy, std::size_t nrows, Body&& body) {
  switch (policy) {
    case SchedulePolicy::kStatic:
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < nrows; ++i) body(i);
      break;
    case SchedulePolicy::kDynamic:
#pragma omp parallel for schedule(dynamic)
      for (std::size_t i = 0; i < nrows; ++i) body(i);
      break;
    case SchedulePolicy::kGuided:
#pragma omp parallel for schedule(guided)
      for (std::size_t i = 0; i < nrows; ++i) body(i);
      break;
    default:
      // Balanced policies iterate via RowPartition inside the kernels.
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < nrows; ++i) body(i);
      break;
  }
}

}  // namespace spgemm::parallel
