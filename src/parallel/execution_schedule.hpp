// ExecutionSchedule — a persistent, locality-aware tile schedule.
//
// One object owns everything the tiled two-phase drivers need to know about
// WHO runs WHICH rows: the flop-balanced tile plan (parallel/tiles.hpp cuts
// inside each thread's RowPartition range, so tile ownership is aligned with
// the Fig. 6 partition), the assignment policy, and the per-pass claim state.
// The fused one-shot driver (core/spgemm_twophase.hpp) and the persistent
// inspector-executor handle (core/spgemm_handle.hpp) traverse the SAME
// schedule object, so the two paths can never disagree on tile cuts,
// ownership, or accumulator sizing.
//
// Three assignment policies (SpGemmOptions::tile_schedule):
//   * kStatic   — each thread runs exactly its owned tiles, in row order.
//     No coordination at all; best cache/NUMA affinity on uniform matrices.
//   * kDynamic  — one global atomic cursor over all tiles in row order.
//     Any thread may run any tile; best tail behaviour on extreme skew, no
//     locality.
//   * kStealing — each thread runs its owned tiles front-to-back (the static
//     order, so its statically-affine rows stay cache/NUMA-hot) and only
//     when its own deque drains does it steal — from the BACK of the
//     nearest neighbour's deque, nearest victim first.  Back-stealing takes
//     the tiles the owner would reach last, which are the coldest in the
//     owner's cache; ring-nearest victims keep stolen rows close in NUMA
//     distance.  Under perfect balance this degenerates to the static
//     schedule (zero steals, zero contention beyond one relaxed flag per
//     tile).
//
// A schedule is built once (per plan) and traversed many times: call
// begin_pass() before each traversal to reset the claim cursors; steals()
// reports how many tiles ran on a thread other than their owner during the
// last pass.  Every tile is visited exactly once per pass under every
// policy, and row-level work is deterministic per row, so the assignment
// policy can never change the numeric result — only who computes it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "parallel/rows_to_threads.hpp"
#include "parallel/schedule.hpp"
#include "parallel/tiles.hpp"

namespace spgemm::parallel {

class ExecutionSchedule {
 public:
  ExecutionSchedule() = default;

  /// Cut each thread's partition range into tiles of ~`target_flop` scalar
  /// multiplications (0 = row cap only) and at most `row_cap` rows, and
  /// record ownership.  The claim state is allocated here; begin_pass() must
  /// run before the first traversal.
  void build(const RowPartition& part, TileSchedule policy,
             std::size_t row_cap, Offset target_flop) {
    policy_ = policy;
    tiles_.clear();
    const int nthreads = part.threads();
    owner_begin_.assign(static_cast<std::size_t>(nthreads) + 1, 0);
    owned_max_row_flop_.assign(static_cast<std::size_t>(nthreads), 0);
    owned_flop_.assign(static_cast<std::size_t>(nthreads), 0);
    global_max_row_flop_ = 0;
    total_flop_ = part.total_flop();
    for (int t = 0; t < nthreads; ++t) {
      const auto ut = static_cast<std::size_t>(t);
      cut_tiles(part.flop_prefix.data(), part.offsets[ut],
                part.offsets[ut + 1], target_flop, row_cap, tiles_);
      owner_begin_[ut + 1] = tiles_.size();
      // The thread ranges tile [0, nrows), so these per-range scans are one
      // pass over the matrix and their maxima cover the global maximum.
      owned_max_row_flop_[ut] = part.max_row_flop(t);
      owned_flop_[ut] = part.flop_prefix[part.offsets[ut + 1]] -
                        part.flop_prefix[part.offsets[ut]];
      if (owned_max_row_flop_[ut] > global_max_row_flop_) {
        global_max_row_flop_ = owned_max_row_flop_[ut];
      }
    }
    if (!shared_) shared_ = std::make_unique<Shared>();
    if (policy_ == TileSchedule::kStealing) {
      if (taken_count_ < tiles_.size()) {
        taken_ = std::make_unique<std::atomic<std::uint8_t>[]>(tiles_.size());
        taken_count_ = tiles_.size();
      }
    }
    begin_pass();
  }

  [[nodiscard]] TileSchedule policy() const { return policy_; }
  [[nodiscard]] std::size_t tile_count() const { return tiles_.size(); }
  [[nodiscard]] int threads() const {
    return static_cast<int>(owner_begin_.size()) - 1;
  }
  [[nodiscard]] const TileRange& tile(std::size_t i) const {
    return tiles_[i];
  }
  [[nodiscard]] std::size_t owned_count(int tid) const {
    const auto t = static_cast<std::size_t>(tid);
    return owner_begin_[t + 1] - owner_begin_[t];
  }

  /// Visit thread `tid`'s OWNED tiles in row order, regardless of which
  /// thread actually ran them during a pass — ownership, not the claim
  /// state, is what NUMA-locality repair (retouch_output_pages) needs.
  /// Visit: void(const TileRange&).
  template <typename Visit>
  void for_each_owned_tile(int tid, Visit&& visit) const {
    const auto t = static_cast<std::size_t>(tid);
    for (std::size_t i = owner_begin_[t]; i < owner_begin_[t + 1]; ++i) {
      visit(tiles_[i]);
    }
  }

  /// Worst-case per-row flop a thread's accumulator must hold: under the
  /// static policy a thread only ever sees its owned rows; under dynamic or
  /// stealing it may run any tile, so sizing must cover the global maximum.
  [[nodiscard]] Offset sizing_max_row_flop(int tid) const {
    return policy_ == TileSchedule::kStatic
               ? owned_max_row_flop_[static_cast<std::size_t>(tid)]
               : global_max_row_flop_;
  }
  [[nodiscard]] Offset global_max_row_flop() const {
    return global_max_row_flop_;
  }

  /// Flop bound for sizing a thread's capture scratch: under the static
  /// policy a thread captures at most its owned rows' flop; under dynamic
  /// or stealing it may run any tile, so only the total flop bounds it.
  /// Shared by the fused driver and the handle so capture eligibility can
  /// never diverge between the two paths.
  [[nodiscard]] Offset capture_flop_bound(int tid) const {
    return policy_ == TileSchedule::kStatic
               ? owned_flop_[static_cast<std::size_t>(tid)]
               : total_flop_;
  }

  /// Reset the claim state ahead of one full traversal of the schedule.
  void begin_pass() {
    if (!shared_) return;
    shared_->next.store(0, std::memory_order_relaxed);
    shared_->steals.store(0, std::memory_order_relaxed);
    reset_occupancy();
    if (policy_ == TileSchedule::kStealing) {
      for (std::size_t i = 0; i < tiles_.size(); ++i) {
        taken_[i].store(0, std::memory_order_relaxed);
      }
    }
  }

  /// Tiles run by a thread other than their owner during the last pass.
  [[nodiscard]] std::uint64_t steals() const {
    return shared_ ? shared_->steals.load(std::memory_order_relaxed) : 0;
  }

  // ---- Pass occupancy (engine execution lanes) ---------------------------
  //
  // The serving engine overlays small products onto the workers a large
  // product's pass is NOT using right now.  Each worker announces the end of
  // its share of a pass via worker_done(); the engine points exit_sink at a
  // counter it polls so the overlay can widen as lane workers drain.  Both
  // counters reset at begin_pass() — occupancy is per pass, not per plan.

  /// Mark the calling worker's share of the current pass finished.  Called
  /// once per worker per pass by the plan/execute drivers.  Const because
  /// the numeric replay traverses a frozen (const) plan; the counters are
  /// claim state, not schedule shape.
  void worker_done() const {
    if (shared_) shared_->exited.fetch_add(1, std::memory_order_relaxed);
    if (exit_sink_) exit_sink_->fetch_add(1, std::memory_order_relaxed);
  }

  /// Zero the occupancy counters ahead of a pass that does not re-claim
  /// tiles (the numeric replay walks frozen per-thread tile lists and never
  /// calls begin_pass(), but still occupies its workers).
  void reset_occupancy() const {
    if (shared_) shared_->exited.store(0, std::memory_order_relaxed);
    if (exit_sink_) exit_sink_->store(0, std::memory_order_relaxed);
  }

  /// Workers that have finished their share of the current pass.
  [[nodiscard]] int workers_exited() const {
    return shared_ ? shared_->exited.load(std::memory_order_relaxed) : 0;
  }

  /// Mirror worker exits into an engine-owned counter (nullptr detaches).
  /// The sink must outlive every pass run while it is attached; begin_pass()
  /// zeroes it alongside the internal counter.
  void set_exit_sink(std::atomic<int>* sink) { exit_sink_ = sink; }

  /// Traverse thread `tid`'s share of the current pass.
  /// Visit: void(std::size_t tile_index, const TileRange&, bool stolen).
  /// Claim flags use relaxed ordering: they only decide which thread runs a
  /// tile, and all cross-thread visibility of the tile's output is
  /// established by the OpenMP barrier that ends the parallel region.
  template <typename Visit>
  void for_each_tile(int tid, Visit&& visit) {
    const auto t = static_cast<std::size_t>(tid);
    switch (policy_) {
      case TileSchedule::kStatic:
        for (std::size_t i = owner_begin_[t]; i < owner_begin_[t + 1]; ++i) {
          visit(i, tiles_[i], false);
        }
        break;
      case TileSchedule::kDynamic:
        for (std::size_t i = shared_->next.fetch_add(
                 1, std::memory_order_relaxed);
             i < tiles_.size();
             i = shared_->next.fetch_add(1, std::memory_order_relaxed)) {
          visit(i, tiles_[i], false);
        }
        break;
      case TileSchedule::kStealing: {
        // Run the owned deque front-to-back (static affinity order).
        for (std::size_t i = owner_begin_[t]; i < owner_begin_[t + 1]; ++i) {
          if (claim(i)) visit(i, tiles_[i], false);
        }
        // Drained: steal one tile at a time from the back of the nearest
        // victim that still has work, then look again from the nearest.
        // Claim flags only ever transition to taken, so this thief's last
        // back-scan position per victim is a valid upper bound for its next
        // scan — the stolen tail is never rescanned, keeping the thief's
        // total scan work linear in the victims' deque lengths.
        const int nthreads = threads();
        std::vector<std::size_t> back(owner_begin_.begin() + 1,
                                      owner_begin_.end());
        bool stole = true;
        while (stole) {
          stole = false;
          for (int d = 1; d < nthreads && !stole; ++d) {
            for (int dir = 0; dir < 2 && !stole; ++dir) {
              const int v = dir == 0 ? (tid + d) % nthreads
                                     : (tid - d % nthreads + nthreads) %
                                           nthreads;
              if (v == tid || (dir == 1 && v == (tid + d) % nthreads)) {
                continue;  // wrapped onto self / same victim twice
              }
              const auto uv = static_cast<std::size_t>(v);
              std::size_t i = back[uv];
              while (i-- > owner_begin_[uv]) {
                if (claim(i)) {
                  back[uv] = i;
                  shared_->steals.fetch_add(1, std::memory_order_relaxed);
                  visit(i, tiles_[i], true);
                  stole = true;
                  break;
                }
              }
              if (!stole) back[uv] = owner_begin_[uv];  // victim drained
            }
          }
        }
        break;
      }
    }
  }

 private:
  /// Shared mutable pass state lives behind one pointer so the schedule
  /// stays movable (it is persisted inside SpGemmHandle's plan).
  struct Shared {
    std::atomic<std::size_t> next{0};      ///< dynamic-policy global cursor
    std::atomic<std::uint64_t> steals{0};  ///< stolen tiles this pass
    /// Workers done with this pass; mutable so const traversals of a frozen
    /// plan (numeric replay) can still report occupancy.
    mutable std::atomic<int> exited{0};
  };

  bool claim(std::size_t i) {
    // Test-and-test-and-set: probing an already-taken tile costs a shared
    // read, not a cache-line-invalidating RMW (steal scans walk past many
    // taken flags).
    if (taken_[i].load(std::memory_order_relaxed) != 0) return false;
    return taken_[i].exchange(1, std::memory_order_relaxed) == 0;
  }

  TileSchedule policy_ = TileSchedule::kStatic;
  std::vector<TileRange> tiles_;          ///< all tiles, global row order
  std::vector<std::size_t> owner_begin_;  ///< tiles_[b[t]..b[t+1]) owned by t
  std::vector<Offset> owned_max_row_flop_;
  std::vector<Offset> owned_flop_;  ///< flop share of each thread's range
  Offset global_max_row_flop_ = 0;
  Offset total_flop_ = 0;
  std::unique_ptr<Shared> shared_;
  std::atomic<int>* exit_sink_ = nullptr;  ///< engine lane-occupancy mirror
  std::unique_ptr<std::atomic<std::uint8_t>[]> taken_;  ///< stealing only
  std::size_t taken_count_ = 0;  ///< grow-only claim-flag capacity
};

}  // namespace spgemm::parallel
