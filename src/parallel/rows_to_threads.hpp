// Flop-balanced static row partitioning — the paper's RowsToThreads (Fig. 6).
//
// Per-row flops are counted in parallel from the CSR structure of A and B,
// prefix-summed, and thread boundaries found by binary search so each thread
// receives an (approximately) equal share of scalar multiplications rather
// than an equal share of rows.  This is the light-weight load balancer the
// paper uses instead of OpenMP dynamic/guided scheduling (§4.1).
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "parallel/lowbnd.hpp"
#include "parallel/prefix_sum.hpp"

namespace spgemm::parallel {

/// Per-row flop counts for C = A*B from raw CSR structure arrays.
/// flop[i] = sum over nonzeros a_ik of nnz(b_k*).  `flop` must hold
/// `nrows_a` elements.
template <IndexType IT>
void count_flops_per_row(std::size_t nrows_a, const Offset* rpts_a,
                         const IT* cols_a, const Offset* rpts_b,
                         Offset* flop) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < nrows_a; ++i) {
    Offset acc = 0;
    for (Offset j = rpts_a[i]; j < rpts_a[i + 1]; ++j) {
      const auto k = static_cast<std::size_t>(cols_a[j]);
      acc += rpts_b[k + 1] - rpts_b[k];
    }
    flop[i] = acc;
  }
}

/// Result of RowsToThreads: row ranges plus the flop prefix array, which the
/// two-phase kernels reuse for hash-table sizing (max flop per row).
struct RowPartition {
  /// offsets[t]..offsets[t+1] is the row range of thread t; size nthreads+1.
  std::vector<std::size_t> offsets;
  /// Exclusive prefix over per-row flops; size nrows+1; back() = total flop.
  std::vector<Offset> flop_prefix;

  [[nodiscard]] int threads() const {
    return static_cast<int>(offsets.size()) - 1;
  }
  [[nodiscard]] Offset total_flop() const { return flop_prefix.back(); }

  /// Max per-row flop within thread t's range (hash-table sizing input).
  [[nodiscard]] Offset max_row_flop(int t) const {
    Offset best = 0;
    for (std::size_t i = offsets[static_cast<std::size_t>(t)];
         i < offsets[static_cast<std::size_t>(t) + 1]; ++i) {
      const Offset f = flop_prefix[i + 1] - flop_prefix[i];
      if (f > best) best = f;
    }
    return best;
  }
};

/// Build a flop-balanced partition of `nrows_a` rows across `nthreads`.
/// Implements paper Fig. 6 verbatim: count flops, prefix-sum, lowbnd.
template <IndexType IT>
RowPartition rows_to_threads(std::size_t nrows_a, const Offset* rpts_a,
                             const IT* cols_a, const Offset* rpts_b,
                             int nthreads) {
  RowPartition part;
  part.flop_prefix.resize(nrows_a + 1);
  count_flops_per_row(nrows_a, rpts_a, cols_a, rpts_b,
                      part.flop_prefix.data());
  part.flop_prefix[nrows_a] = 0;
  exclusive_scan_inplace(part.flop_prefix.data(), nrows_a + 1);
  const Offset total = part.flop_prefix[nrows_a];

  part.offsets.assign(static_cast<std::size_t>(nthreads) + 1, 0);
  const double ave =
      static_cast<double>(total) / static_cast<double>(nthreads);
#pragma omp parallel for schedule(static)
  for (int t = 1; t < nthreads; ++t) {
    const auto target = static_cast<Offset>(ave * t);
    part.offsets[static_cast<std::size_t>(t)] =
        lowbnd(part.flop_prefix.data(), nrows_a + 1, target);
    // lowbnd may return nrows_a+? clamp to nrows_a.
    if (part.offsets[static_cast<std::size_t>(t)] > nrows_a) {
      part.offsets[static_cast<std::size_t>(t)] = nrows_a;
    }
  }
  part.offsets[static_cast<std::size_t>(nthreads)] = nrows_a;
  return part;
}

/// Equal-rows partition (the naive static split the paper's Fig. 9 ablates
/// against).  Still computes the flop prefix: kernels need it for
/// accumulator sizing regardless of how rows are assigned.
template <IndexType IT>
RowPartition rows_equal(std::size_t nrows_a, const Offset* rpts_a,
                        const IT* cols_a, const Offset* rpts_b,
                        int nthreads) {
  RowPartition part;
  part.flop_prefix.resize(nrows_a + 1);
  count_flops_per_row(nrows_a, rpts_a, cols_a, rpts_b,
                      part.flop_prefix.data());
  part.flop_prefix[nrows_a] = 0;
  exclusive_scan_inplace(part.flop_prefix.data(), nrows_a + 1);

  part.offsets.assign(static_cast<std::size_t>(nthreads) + 1, 0);
  const std::size_t chunk =
      (nrows_a + static_cast<std::size_t>(nthreads) - 1) /
      static_cast<std::size_t>(nthreads);
  for (int t = 0; t <= nthreads; ++t) {
    part.offsets[static_cast<std::size_t>(t)] =
        std::min(nrows_a, chunk * static_cast<std::size_t>(t));
  }
  return part;
}

}  // namespace spgemm::parallel
