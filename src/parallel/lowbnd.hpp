// lowbnd(vec, value): minimum index whose element is >= value
// (paper Fig. 6, line 14).  Plain binary search over a monotone array.
#pragma once

#include <cstddef>

namespace spgemm::parallel {

template <typename T>
std::size_t lowbnd(const T* vec, std::size_t n, T value) {
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 0) {
    const std::size_t half = len / 2;
    const std::size_t mid = lo + half;
    if (vec[mid] < value) {
      lo = mid + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

}  // namespace spgemm::parallel
