// Parallel prefix sums over contiguous arrays.
//
// RowsToThreads (paper Fig. 6, line 8) and every two-phase kernel's
// symbolic→numeric transition need an exclusive scan over per-row counts.
// The implementation blocks the input per thread, scans blocks locally,
// scans the block totals serially (T is tiny), then offsets each block.
#pragma once

#include <omp.h>

#include <cstddef>
#include <vector>

namespace spgemm::parallel {

/// In-place exclusive scan of `data[0..n)`; returns the grand total.
/// After the call data[i] holds the sum of the original data[0..i).
template <typename T>
T exclusive_scan_inplace(T* data, std::size_t n) {
  if (n == 0) return T{0};
  int nthreads = 1;
  std::vector<T> block_total;

#pragma omp parallel
  {
#pragma omp single
    {
      nthreads = omp_get_num_threads();
      block_total.assign(static_cast<std::size_t>(nthreads) + 1, T{0});
    }
    const int tid = omp_get_thread_num();
    const std::size_t chunk = (n + static_cast<std::size_t>(nthreads) - 1) /
                              static_cast<std::size_t>(nthreads);
    const std::size_t begin = chunk * static_cast<std::size_t>(tid);
    const std::size_t end = begin + chunk < n ? begin + chunk : n;

    T local = T{0};
    for (std::size_t i = begin; i < end; ++i) {
      const T value = data[i];
      data[i] = local;
      local += value;
    }
    block_total[static_cast<std::size_t>(tid) + 1] = local;

#pragma omp barrier
#pragma omp single
    {
      for (int t = 0; t < nthreads; ++t) {
        block_total[static_cast<std::size_t>(t) + 1] +=
            block_total[static_cast<std::size_t>(t)];
      }
    }

    const T offset = block_total[static_cast<std::size_t>(tid)];
    if (offset != T{0}) {
      for (std::size_t i = begin; i < end; ++i) data[i] += offset;
    }
  }
  return block_total[static_cast<std::size_t>(nthreads)];
}

/// Exclusive scan from `counts[0..n)` into `out[0..n]`; out[n] = total.
/// `out` must have room for n+1 elements.
template <typename TIn, typename TOut>
TOut exclusive_scan(const TIn* counts, std::size_t n, TOut* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<TOut>(counts[i]);
  const TOut total = exclusive_scan_inplace(out, n);
  out[n] = total;
  return total;
}

}  // namespace spgemm::parallel
