// Thin OpenMP convenience layer: thread-count resolution and a scoped
// override used by kernels that take an explicit `threads` option.
#pragma once

#include <omp.h>

namespace spgemm::parallel {

/// Resolve a user-facing thread-count option: 0 means "OpenMP default".
inline int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

/// RAII override of omp_set_num_threads, restoring the prior value.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int threads)
      : previous_(omp_get_max_threads()), active_(threads > 0) {
    if (active_) omp_set_num_threads(threads);
  }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;
  ~ScopedNumThreads() {
    if (active_) omp_set_num_threads(previous_);
  }

 private:
  int previous_;
  bool active_;
};

}  // namespace spgemm::parallel
