// Structured error taxonomy of the library.
//
// A serving tier cannot act on `std::runtime_error("...")`: a producer
// draining futures needs to tell "your input was malformed" (give up) from
// "the engine shed you under load" (resubmit later) from "memory pressure
// defeated every fallback" (degrade the workload) without string-matching
// what(). SpGemmError carries a stable ErrorCode for exactly that, and —
// because it derives from std::runtime_error — travels losslessly through
// std::promise/std::future rethrow and keeps legacy catch(std::runtime_error)
// sites working.
//
// Throw-site conventions:
//   kBadInput          malformed/mismatched caller input (dimensions, null
//                      request pointers, corrupt MatrixMarket files,
//                      executing an unplanned handle, structure drift)
//   kOutOfMemory       allocation failure that survived the engine's whole
//                      degradation ladder (engine/spgemm_engine.hpp)
//   kDeadlineExceeded  the request's deadline passed before it could run
//   kShed              admission control dropped the request under
//                      backpressure (bounded queue / flop budget / priority)
//   kEngineStopped     submitted to an engine that is draining for shutdown
//   kInternal          invariant violation or an unclassified foreign
//                      exception crossing the engine boundary
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace spgemm {

enum class ErrorCode : std::uint8_t {
  kBadInput,
  kOutOfMemory,
  kDeadlineExceeded,
  kShed,
  kEngineStopped,
  kInternal,
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadInput:
      return "bad-input";
    case ErrorCode::kOutOfMemory:
      return "out-of-memory";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kShed:
      return "shed";
    case ErrorCode::kEngineStopped:
      return "engine-stopped";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

class SpGemmError : public std::runtime_error {
 public:
  SpGemmError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace spgemm
