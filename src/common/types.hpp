// Core type vocabulary shared by every module.
//
// Index and value types are template parameters throughout the library; the
// concepts below pin down what a type must provide to act as one.  Row
// pointer (offset) arrays always use std::int64_t: the flop count of a
// multiply (and therefore intermediate-product counts) can exceed 2^31 even
// when the matrix dimension fits comfortably in 32 bits (e.g. cage15 in the
// paper's Table 2 has flop(A^2) = 2.08e9).
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

namespace spgemm {

/// Signed integer type usable as a row/column index.
template <typename T>
concept IndexType = std::signed_integral<T> && (sizeof(T) >= 4);

/// Arithmetic type usable as a matrix value.
template <typename T>
concept ValueType = std::is_arithmetic_v<T>;

/// Offsets into cols/vals arrays (row pointers, flop counters).
using Offset = std::int64_t;

/// Whether a kernel must emit rows with ascending column indices.
/// Mirrors the paper's sorted/unsorted output distinction (Table 1).
enum class SortOutput : std::uint8_t {
  kYes,  ///< rows of C sorted by column index
  kNo,   ///< rows of C in whatever order the accumulator produced
};

/// Sortedness state tracked on matrices themselves.
enum class Sortedness : std::uint8_t {
  kSorted,    ///< every row ascending by column index
  kUnsorted,  ///< no ordering guarantee
};

}  // namespace spgemm
