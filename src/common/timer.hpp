// Minimal wall-clock timer used by benches and the microbenchmark substrate.
#pragma once

#include <chrono>

namespace spgemm {

/// Steady-clock stopwatch.  Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the clock.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Microseconds elapsed.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spgemm
