// Minimal wall-clock timer used by benches and the microbenchmark substrate,
// plus the monotonic nanosecond helpers shared by telemetry spans and the
// engine's latency accounting.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace spgemm {

/// Monotonic steady-clock nanoseconds since an unspecified (but fixed per
/// process) epoch.  All telemetry timestamps use this clock so span starts,
/// trace events, and queue-delay math are directly comparable.
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds for an arbitrary steady_clock time point, on the same epoch as
/// monotonic_ns().  Lets code that stores time_points (e.g. enqueue stamps)
/// emit trace events without re-deriving durations by hand.
[[nodiscard]] inline std::uint64_t to_monotonic_ns(
    std::chrono::steady_clock::time_point tp) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// Fractional milliseconds between two steady_clock time points.
[[nodiscard]] inline double ms_between(
    std::chrono::steady_clock::time_point from,
    std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Process-lifetime peak resident set in bytes, via getrusage(RUSAGE_SELF).
/// ru_maxrss is KiB on Linux, bytes on macOS; 0 where unavailable.  The
/// counter is monotone for the life of the process, so footprint deltas
/// (before/after a phase) only attribute correctly to the FIRST phase that
/// reaches a given high-water mark — benches comparing variants must run
/// the expected-smaller one first.
[[nodiscard]] inline std::size_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Steady-clock stopwatch.  Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the clock.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Microseconds elapsed.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spgemm
