// Minimal wall-clock timer used by benches and the microbenchmark substrate,
// plus the monotonic nanosecond helpers shared by telemetry spans and the
// engine's latency accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace spgemm {

/// Monotonic steady-clock nanoseconds since an unspecified (but fixed per
/// process) epoch.  All telemetry timestamps use this clock so span starts,
/// trace events, and queue-delay math are directly comparable.
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds for an arbitrary steady_clock time point, on the same epoch as
/// monotonic_ns().  Lets code that stores time_points (e.g. enqueue stamps)
/// emit trace events without re-deriving durations by hand.
[[nodiscard]] inline std::uint64_t to_monotonic_ns(
    std::chrono::steady_clock::time_point tp) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// Fractional milliseconds between two steady_clock time points.
[[nodiscard]] inline double ms_between(
    std::chrono::steady_clock::time_point from,
    std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Steady-clock stopwatch.  Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the clock.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Microseconds elapsed.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spgemm
