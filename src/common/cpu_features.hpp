// Runtime CPU feature detection for the vectorized hash-probing paths.
//
// The HashVector kernel is compiled with whatever ISA the build enables
// (-march=native by default); these queries let tests force the scalar
// fallback and let the library report which probe width is active.
#pragma once

namespace spgemm {

/// SIMD width available for hash probing.
enum class SimdLevel {
  kScalar,  ///< no usable vector extension; chunked scalar emulation
  kAvx2,    ///< 256-bit: 8 x int32 keys per probe
  kAvx512,  ///< 512-bit: 16 x int32 keys per probe
};

/// Highest SIMD level both compiled in and supported by the running CPU.
SimdLevel detected_simd_level();

/// Human-readable name ("scalar", "avx2", "avx512").
const char* simd_level_name(SimdLevel level);

}  // namespace spgemm
