// Runtime CPU feature detection for the vectorized hash-probing paths.
//
// The HashVector kernel is compiled with whatever ISA the build enables
// (-march=native by default); these queries let tests force the scalar
// fallback and let the library report which probe width is active.
#pragma once

namespace spgemm {

/// SIMD width available for hash probing.
enum class SimdLevel {
  kScalar,  ///< no usable vector extension; chunked scalar emulation
  kAvx2,    ///< 256-bit: 8 x int32 keys per probe
  kAvx512,  ///< 512-bit: 16 x int32 keys per probe
};

/// Highest SIMD level both compiled in and supported by the running CPU.
SimdLevel detected_simd_level();

/// Human-readable name ("scalar", "avx2", "avx512").
const char* simd_level_name(SimdLevel level);

/// Which probe implementation the SIMD-probed accumulators and the
/// vectorized numeric replay use; runtime-forcible so tests can prove the
/// scalar/AVX2/AVX-512 tiers agree bit-for-bit.
enum class ProbeKind {
  kAuto,
  kScalar,
  kAvx2,
  kAvx512,
};

/// Human-readable name ("auto", "scalar", "avx2", "avx512").
const char* probe_kind_name(ProbeKind kind);

/// Resolve a requested probe kind to the one that will actually run:
///
///   1. The SPGEMM_FORCE_PROBE environment variable ("scalar", "avx2",
///      "avx512"), when set, overrides `requested` — the CI matrix legs use
///      it to exercise the fallback tiers on every push without touching
///      call sites.
///   2. kAuto resolves to the widest tier both compiled in and supported by
///      the running CPU.
///   3. The result is clamped down to what the build compiled in and the
///      host supports, so forcing "avx512" on an SSE-only build degrades to
///      scalar instead of executing illegal instructions.
///
/// The environment is re-read on every call (resolution happens once per
/// accumulator construction / plan, never per probe), so tests can flip the
/// force knob with setenv().
ProbeKind resolve_probe_kind(ProbeKind requested);

}  // namespace spgemm
