// Small deterministic PRNGs.
//
// Generators and workload builders in this repo must be reproducible across
// runs and across thread counts, so everything takes an explicit 64-bit seed
// and uses these engines rather than std::mt19937 (whose distributions are
// not bit-stable across standard library implementations).
#pragma once

#include <cstdint>

namespace spgemm {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used both as a stream
/// generator and to expand one seed into many independent seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  Uses the widening-multiply trick; the
  /// modulo bias is < 2^-64 * bound, negligible for every use here.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose engine seeded via SplitMix64.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace spgemm
