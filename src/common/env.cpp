#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace spgemm::env {

std::int64_t get_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(parsed);
}

bool get_bool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::string value(raw);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "1" || value == "true" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  return fallback;
}

std::string get_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

}  // namespace spgemm::env
