#include "common/fault_injection.hpp"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <mutex>

#include "common/env.hpp"
#include "telemetry/registry.hpp"

namespace spgemm::fault {
namespace {

struct PointState {
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> triggered{0};
  // Armed window [nth, nth + count); 0 = disarmed.  Guarded by g_mu for
  // writes; reads on the trigger path are atomic snapshots.
  std::atomic<std::uint64_t> nth{0};
  std::atomic<std::uint64_t> count{0};
  // Labeled telemetry counter, registered at arm() time so the noexcept
  // trigger path never touches the registry (which allocates).
  std::atomic<telemetry::Counter*> telem_triggered{nullptr};
};

PointState g_state[kNumPoints];
std::mutex g_mu;

int index_of(const char* point) noexcept {
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    if (std::strcmp(kPoints[i], point) == 0) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

namespace detail {

std::atomic<int> g_armed{0};

bool should_trigger(const char* point) noexcept {
  const int idx = index_of(point);
  // A macro naming an unregistered point is a programming error: the CI
  // sweep could never reach it.  Debug builds refuse; release builds treat
  // it as permanently disarmed.
  assert(idx >= 0 && "fault point not listed in fault::kPoints");
  if (idx < 0) return false;
  PointState& st = g_state[idx];
  const std::uint64_t pass =
      st.passes.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t nth = st.nth.load(std::memory_order_relaxed);
  if (nth == 0) return false;
  const std::uint64_t count = st.count.load(std::memory_order_relaxed);
  if (pass >= nth && pass < nth + count) {
    st.triggered.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::Counter* c =
            st.telem_triggered.load(std::memory_order_acquire)) {
      c->add(1);
    }
    return true;
  }
  return false;
}

}  // namespace detail

bool arm(const std::string& point, std::uint64_t nth, std::uint64_t count) {
  const int idx = index_of(point.c_str());
  if (idx < 0 || nth == 0 || count == 0) return false;
  std::lock_guard<std::mutex> lk(g_mu);
  PointState& st = g_state[static_cast<std::size_t>(idx)];
  const bool was_armed = st.nth.load(std::memory_order_relaxed) != 0;
  st.passes.store(0, std::memory_order_relaxed);
  st.nth.store(nth, std::memory_order_relaxed);
  st.count.store(count, std::memory_order_relaxed);
  if (!was_armed) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
  // Mirror into telemetry so chaos runs show up in the same snapshot as the
  // serving metrics they perturb.
  telemetry::registry()
      .counter("spgemm_fault_armed_total",
               "Times each fault point was armed.", "point", kPoints[idx])
      .add(1);
  st.telem_triggered.store(
      &telemetry::registry().counter(
          "spgemm_fault_triggered_total",
          "Injected faults thrown at each fault point.", "point",
          kPoints[idx]),
      std::memory_order_release);
  return true;
}

bool arm_spec(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  const std::string point = spec.substr(0, c1);
  std::uint64_t nth = 0;
  std::uint64_t count = 1;
  try {
    const std::size_t c2 = spec.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      nth = std::stoull(spec.substr(c1 + 1));
    } else {
      nth = std::stoull(spec.substr(c1 + 1, c2 - c1 - 1));
      count = std::stoull(spec.substr(c2 + 1));
    }
  } catch (...) {
    return false;
  }
  return arm(point, nth, count);
}

bool arm_from_env() {
  const std::string spec = env::get_string("SPGEMM_FAULT", "");
  return !spec.empty() && arm_spec(spec);
}

void disarm(const std::string& point) {
  const int idx = index_of(point.c_str());
  if (idx < 0) return;
  std::lock_guard<std::mutex> lk(g_mu);
  PointState& st = g_state[static_cast<std::size_t>(idx)];
  if (st.nth.load(std::memory_order_relaxed) != 0) {
    st.nth.store(0, std::memory_order_relaxed);
    st.count.store(0, std::memory_order_relaxed);
    detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard<std::mutex> lk(g_mu);
  for (PointState& st : g_state) {
    if (st.nth.load(std::memory_order_relaxed) != 0) {
      detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
    st.nth.store(0, std::memory_order_relaxed);
    st.count.store(0, std::memory_order_relaxed);
    st.passes.store(0, std::memory_order_relaxed);
    st.triggered.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t passes(const std::string& point) {
  const int idx = index_of(point.c_str());
  return idx < 0 ? 0
                 : g_state[static_cast<std::size_t>(idx)].passes.load(
                       std::memory_order_relaxed);
}

std::uint64_t triggered(const std::string& point) {
  const int idx = index_of(point.c_str());
  return idx < 0 ? 0
                 : g_state[static_cast<std::size_t>(idx)].triggered.load(
                       std::memory_order_relaxed);
}

}  // namespace spgemm::fault
