// Environment-variable helpers for bench binaries (sizing knobs, full-scale
// toggles) so every bench runs unattended with sensible defaults.
#pragma once

#include <cstdint>
#include <string>

namespace spgemm::env {

/// Integer environment variable with default; returns `fallback` when unset
/// or unparsable.
std::int64_t get_int(const char* name, std::int64_t fallback);

/// Boolean environment variable: "1", "true", "yes", "on" (case-insensitive)
/// are true; unset or anything else returns `fallback`.
bool get_bool(const char* name, bool fallback);

/// String environment variable with default.
std::string get_string(const char* name, const std::string& fallback);

}  // namespace spgemm::env
