#include "common/cpu_features.hpp"

#include "common/env.hpp"

namespace spgemm {

SimdLevel detected_simd_level() {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
#if defined(__AVX2__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "unknown";
}

const char* probe_kind_name(ProbeKind kind) {
  switch (kind) {
    case ProbeKind::kAuto:
      return "auto";
    case ProbeKind::kScalar:
      return "scalar";
    case ProbeKind::kAvx2:
      return "avx2";
    case ProbeKind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

ProbeKind resolve_probe_kind(ProbeKind requested) {
  const std::string forced = env::get_string("SPGEMM_FORCE_PROBE", "");
  if (forced == "scalar") {
    requested = ProbeKind::kScalar;
  } else if (forced == "avx2") {
    requested = ProbeKind::kAvx2;
  } else if (forced == "avx512") {
    requested = ProbeKind::kAvx512;
  }
  const SimdLevel ceiling = detected_simd_level();
  if (requested == ProbeKind::kAuto) {
    switch (ceiling) {
      case SimdLevel::kAvx512:
        return ProbeKind::kAvx512;
      case SimdLevel::kAvx2:
        return ProbeKind::kAvx2;
      case SimdLevel::kScalar:
        return ProbeKind::kScalar;
    }
  }
  // Clamp the request to the host ceiling: avx512 -> avx2 -> scalar.
  if (requested == ProbeKind::kAvx512 && ceiling != SimdLevel::kAvx512) {
    requested = ProbeKind::kAvx2;
  }
  if (requested == ProbeKind::kAvx2 && ceiling == SimdLevel::kScalar) {
    requested = ProbeKind::kScalar;
  }
  return requested;
}

}  // namespace spgemm
