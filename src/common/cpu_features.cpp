#include "common/cpu_features.hpp"

namespace spgemm {

SimdLevel detected_simd_level() {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
#if defined(__AVX2__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "unknown";
}

}  // namespace spgemm
