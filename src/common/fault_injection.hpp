// Deterministic fault injection for chaos testing.
//
// Production SpGEMM libraries survive because their failure paths are
// exercised, not because failures never happen.  This framework compiles
// named fault points into the library's allocation sites, phase boundaries
// and cache mutation paths, so a test (or a CI sweep) can make the Nth pass
// through any point throw — deterministically — and then prove the
// invariants that matter: no leak, no deadlock, cache pins back to zero,
// results on the retry path bit-identical to the unfaulted run.
//
// Fault points come in two flavours:
//   SPGEMM_FAULT_ALLOC(name)   throws std::bad_alloc when triggered — used
//                              at allocation sites, so the engine's
//                              degradation ladder is what gets tested;
//   SPGEMM_FAULT_RAISE(name)   throws fault::InjectedFault (a runtime_error)
//                              — used at phase boundaries and cache paths,
//                              where the correct reaction is quarantine +
//                              typed failure, not retry.
//
// Disarmed cost: one relaxed atomic load of a global counter per pass —
// branch-predicted never-taken, no registration, no locks; the macros stay
// compiled in under NDEBUG so release builds can run chaos suites too.
//
// Arming:
//   * scoped C++ API:   fault::ScopedFault f("mem.aligned.alloc", 3);
//     (the 3rd pass through the point throws; optional count = how many
//     consecutive passes after that also throw, default 1)
//   * environment:      SPGEMM_FAULT=point:nth[:count] before first use,
//     activated by fault::arm_from_env() — the CI fault-injection smoke
//     sweep drives the whole registry this way, one process per point.
//
// Every name passed to a macro must be listed in fault::points(): the
// registry is the contract that lets a sweep enumerate all points without
// first executing them.  Debug builds abort on an unregistered name.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace spgemm::fault {

/// The exception SPGEMM_FAULT_RAISE points throw.  Derives runtime_error so
/// generic handlers keep working; tests catch it specifically to tell an
/// injected fault from a genuine one.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at " + point) {}
};

/// Every fault point compiled into the library, in one place.  A chaos
/// suite or CI sweep iterates this; adding a fault point means adding its
/// name here (enforced by test_resilience's registry-coverage check).
inline constexpr const char* kPoints[] = {
    "mem.aligned.alloc",       // AlignedBuffer::allocate (mem/aligned.hpp)
    "mem.pool.carve",          // Arena::carve (mem/pool_allocator.cpp)
    "mem.pool.oversize",       // oversize operator new (mem/pool_allocator.cpp)
    "handle.plan.alloc",       // plan()'s aggregate allocations (spgemm_handle)
    "handle.plan.symbolic",    // before the kernel build pass (spgemm_handle)
    "handle.execute.numeric",  // before the numeric pass (spgemm_handle)
    "cache.insert",            // PlanCache entry creation (plan_cache.hpp)
    "cache.evict",             // PlanCache eviction path (plan_cache.hpp)
    "shard.spill.write",       // ShardStore spill write-out (shard/shard_store.hpp)
    "shard.load.map",          // ShardStore load/map read-back (shard/shard_store.hpp)
};
inline constexpr std::size_t kNumPoints = sizeof(kPoints) / sizeof(kPoints[0]);

namespace detail {
/// Number of armed faults; the fast-path gate every fault point loads.
extern std::atomic<int> g_armed;

/// Slow path: called only while something is armed.  Counts the pass and
/// returns true when this pass must throw.
bool should_trigger(const char* point) noexcept;
}  // namespace detail

/// Arm one fault: the `nth` pass (1-based) through `point` throws, as do the
/// `count - 1` passes after it.  Replaces any previous arming of the same
/// point.  Returns false (and arms nothing) when `point` is not registered
/// or nth/count are not positive.
bool arm(const std::string& point, std::uint64_t nth, std::uint64_t count = 1);

/// Parse and arm a `point:nth[:count]` spec.  Returns false on malformed
/// specs or unknown points.
bool arm_spec(const std::string& spec);

/// Arm from the SPGEMM_FAULT environment variable (same spec syntax); no-op
/// when unset.  Returns true when a fault was armed.
bool arm_from_env();

/// Disarm one point (keeps its pass counter) / disarm everything and reset
/// all counters.
void disarm(const std::string& point);
void disarm_all();

/// Passes observed / faults thrown at one point since the last disarm_all().
std::uint64_t passes(const std::string& point);
std::uint64_t triggered(const std::string& point);

/// RAII arming for tests: arms on construction, disarms (that point only)
/// on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, std::uint64_t nth = 1,
                       std::uint64_t count = 1)
      : point_(std::move(point)) {
    arm(point_, nth, count);
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { disarm(point_); }

 private:
  std::string point_;
};

/// True when this pass through `point` must throw.  The macro form below is
/// what call sites use; this function is the testable core.
inline bool poll(const char* point) noexcept {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0) return false;
  return detail::should_trigger(point);
}

}  // namespace spgemm::fault

/// Allocation-site fault point: triggered passes observe std::bad_alloc,
/// exactly what a real allocation failure at this site would raise.
#define SPGEMM_FAULT_ALLOC(point)            \
  do {                                       \
    if (::spgemm::fault::poll(point)) {      \
      throw std::bad_alloc();                \
    }                                        \
  } while (0)

/// Phase-boundary / cache-path fault point: triggered passes observe an
/// InjectedFault (runtime_error).
#define SPGEMM_FAULT_RAISE(point)                   \
  do {                                              \
    if (::spgemm::fault::poll(point)) {             \
      throw ::spgemm::fault::InjectedFault(point);  \
    }                                               \
  } while (0)
