// Phase-profiling scope macro.  TELEM_SPAN("handle.plan") times the enclosing
// scope into the shared spgemm_phase_seconds histogram family, labelled
// {phase="handle.plan"}.
//
// Cost model:
//   - compiled out entirely with -DSPGEMM_TELEMETRY_DISABLED (CMake option
//     SPGEMM_TELEMETRY=OFF);
//   - when compiled in but runtime-disabled: one relaxed load + branch at
//     scope entry (no clock read) and a predictable-not-taken branch at exit;
//   - when enabled: two steady_clock reads + one histogram observe.
//
// The histogram lookup happens once per call site via a function-local
// static, so steady-state cost is independent of registry size.
#pragma once

#include "../common/timer.hpp"
#include "registry.hpp"

namespace spgemm::telemetry {

/// RAII span feeding a histogram with the scope's duration in seconds.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram& h) noexcept
      : hist_(&h), start_ns_(enabled() ? monotonic_ns() : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (start_ns_ != 0)
      hist_->observe(static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
  }

 private:
  Histogram* hist_;
  std::uint64_t start_ns_;
};

/// Record an externally measured phase duration (seconds) into the same
/// histogram family TELEM_SPAN uses.  For code that already times its phases
/// (e.g. the one-shot driver's per-tile symbolic/numeric accounting) and
/// wants them attributed without double-timing.
void phase_observe(const char* phase, double seconds);

}  // namespace spgemm::telemetry

#ifndef SPGEMM_TELEMETRY_DISABLED
#define SPGEMM_TELEM_CAT2(a, b) a##b
#define SPGEMM_TELEM_CAT(a, b) SPGEMM_TELEM_CAT2(a, b)
/// Time the enclosing scope into spgemm_phase_seconds{phase=name}.
/// `name` must be a string literal (it keys a function-local static).
#define TELEM_SPAN(name)                                                      \
  static ::spgemm::telemetry::Histogram& SPGEMM_TELEM_CAT(                    \
      telem_span_hist_, __LINE__) =                                           \
      ::spgemm::telemetry::registry().phase_histogram(name);                  \
  ::spgemm::telemetry::ScopedSpan SPGEMM_TELEM_CAT(telem_span_, __LINE__) {   \
    SPGEMM_TELEM_CAT(telem_span_hist_, __LINE__)                              \
  }
#else
#define TELEM_SPAN(name) \
  do {                   \
  } while (0)
#endif
