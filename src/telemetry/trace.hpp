// Per-request trace spans: a bounded-overwrite ring of span/instant events
// per engine pool, dumpable as Chrome trace_event JSON (chrome://tracing or
// Perfetto loadable).
//
// Events carry static-lifetime name/category strings (no allocation on the
// record path) and nanosecond timestamps from spgemm::monotonic_ns().  The
// ring overwrites oldest entries when full and counts drops, so a long-lived
// engine keeps the most recent window of activity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "registry.hpp"

namespace spgemm::telemetry {

/// One trace event.  `ph` follows the Chrome trace_event phase codes we use:
/// 'X' = complete span (ts + dur), 'i' = instant.
struct TraceEvent {
  const char* name = "";       ///< static-lifetime literal
  const char* cat = "engine";  ///< category, static-lifetime literal
  char ph = 'X';
  std::uint64_t ts_ns = 0;   ///< start, monotonic_ns epoch
  std::uint64_t dur_ns = 0;  ///< 'X' only
  std::uint32_t pid = 0;     ///< trace "process": engine pool index
  std::uint32_t tid = 0;     ///< trace "thread": 0 = lane, 1+w = overlay w
  std::uint64_t trace_id = 0;  ///< request trace id (0 = none)
  const char* arg_name = nullptr;  ///< optional numeric arg, static literal
  std::uint64_t arg = 0;
};

/// Bounded-overwrite event ring.  record() is mutex-guarded (one short
/// critical section per event, only on the enabled path); snapshot() returns
/// events oldest-first.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : buf_(std::max<std::size_t>(capacity, 1)) {}
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void record(const TraceEvent& e) noexcept {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    buf_[static_cast<std::size_t>(head_ % buf_.size())] = e;
    ++head_;
  }

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<TraceEvent> out;
    const std::uint64_t n = std::min<std::uint64_t>(head_, buf_.size());
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head_ - n; i < head_; ++i)
      out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lk(mu_);
    return head_;
  }

  /// Events lost to overwrite.
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return head_ > buf_.size() ? head_ - buf_.size() : 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> buf_;
  std::uint64_t head_ = 0;
};

/// Write the union of several rings as Chrome trace_event JSON.  Events are
/// globally sorted by timestamp; timestamps are rebased to the earliest event
/// and emitted in microseconds as the format requires.  Metadata events name
/// each (pid, tid) pair so lane and overlay tracks are labelled in the UI.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const TraceRing*>& rings);

}  // namespace spgemm::telemetry
