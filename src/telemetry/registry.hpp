// Lock-cheap metrics registry: counters, gauges, and fixed-bucket histograms,
// sharded per thread and folded on scrape.
//
// Design goals, in order:
//   1. Disabled cost: one relaxed atomic load + branch per event (same idiom
//      as the fault-injection gate).  No clock reads, no hashing.
//   2. Enabled cost: one thread-hashed relaxed fetch_add on a cache-line
//      aligned shard — no locks on the hot path, mirroring the engine's
//      16-way tenant-shard trick.
//   3. Scrape is exact for counters/histogram totals: folding sums every
//      shard; concurrent writers only ever make the fold a valid
//      point-in-time-or-later value.
//
// Metric identity is (name, optional single label pair).  That is all the
// engine stack needs ("phase", "point", "tenant"-style breakdowns) and keeps
// the registry far away from a full label-set implementation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace spgemm::telemetry {

namespace detail {

/// Global runtime gate.  Initialised at static-init time from the
/// SPGEMM_TELEMETRY / SPGEMM_TELEMETRY_DIR environment (see telemetry.cpp).
extern std::atomic<int> g_enabled;

inline constexpr std::size_t kShardCount = 16;  // power of two

/// Thread → shard.  Hashing the thread id is stable for a thread's lifetime,
/// so a thread always hits the same cache line.
inline std::size_t shard_index() noexcept {
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kShardCount - 1);
  return idx;
}

}  // namespace detail

/// Whether telemetry events are being recorded.  One relaxed load.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed) != 0;
}

/// Flip the runtime gate (tests, benches).  Returns the previous value.
bool set_enabled(bool on) noexcept;

/// Monotonically increasing counter.  add() is a no-op while disabled.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Fold all shards.  Exact once writers have quiesced.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, detail::kShardCount> shards_;
};

/// Last-write-wins gauge (single slot: gauges are "current level" metrics, so
/// sharding would change semantics, and set() is already a single store).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  void add(double delta) noexcept {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram.  Bucket upper bounds are set at construction; the
/// implicit final bucket is +Inf.  observe() is two relaxed fetch_adds plus a
/// short linear scan over the bounds (bounds lists are small, <= 32).
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 33;  // 32 finite bounds + +Inf

  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.size() > kMaxBuckets - 1) bounds_.resize(kMaxBuckets - 1);
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept {
    if (!enabled()) return;
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    Shard& s = shards_[detail::shard_index()];
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    double sum = s.sum.load(std::memory_order_relaxed);
    while (!s.sum.compare_exchange_weak(sum, sum + v,
                                        std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  struct Folded {
    std::vector<std::uint64_t> buckets;  ///< per-bucket (non-cumulative)
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  /// Fold all shards.  Bucket counts and count are exact after quiescence.
  [[nodiscard]] Folded fold() const {
    Folded f;
    f.buckets.assign(bounds_.size() + 1, 0);
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b <= bounds_.size(); ++b)
        f.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      f.count += s.count.load(std::memory_order_relaxed);
      f.sum += s.sum.load(std::memory_order_relaxed);
    }
    return f;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMaxBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, detail::kShardCount> shards_;
};

/// Default duration buckets in seconds: 1 µs · 2^k for k = 0..25 (~33 s).
/// Wide enough for kernel tiles through multi-second sharded products.
[[nodiscard]] std::vector<double> default_seconds_bounds();

/// Point-in-time snapshot of a registry (value types only; safe to hold
/// across exporter calls).
struct Snapshot {
  struct CounterSample {
    std::string name, help, label_key, label_value;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name, help, label_key, label_value;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name, help, label_key, label_value;
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> buckets;  ///< bounds.size()+1, non-cumulative
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Named metric registry.  Lookup/registration takes a mutex (call sites
/// cache the returned reference, typically in a function-local static);
/// recording on the returned metric is lock-free.  Metrics live for the
/// registry's lifetime — references never dangle.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help = "",
                   std::string_view label_key = {},
                   std::string_view label_value = {});

  Gauge& gauge(std::string_view name, std::string_view help = "",
               std::string_view label_key = {},
               std::string_view label_value = {});

  /// Histogram with explicit bucket bounds; bounds are fixed by the first
  /// registration of a (name, label) identity.
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds,
                       std::string_view label_key = {},
                       std::string_view label_value = {});

  /// Phase-duration histogram under the shared "spgemm_phase_seconds" family,
  /// labelled {phase="<phase>"}.  Used by TELEM_SPAN.
  Histogram& phase_histogram(std::string_view phase);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Entry {
    std::string name, help, label_key, label_value;
    char kind;  // 'c', 'g', 'h'
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  Entry& find_or_create(std::string_view name, std::string_view help,
                        std::string_view label_key,
                        std::string_view label_value, char kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;     // insertion order
  std::unordered_map<std::string, Entry*> by_key_;  // composite key
};

/// The process-wide registry every subsystem mirrors into.
Registry& registry();

/// Next per-request trace id (process-wide, starts at 1; 0 means "no id").
std::uint64_t next_trace_id() noexcept;

}  // namespace spgemm::telemetry
