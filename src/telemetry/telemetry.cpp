// Telemetry subsystem implementation: global gate, registry, trace writer,
// exporters, and the env-driven periodic file exporter.
#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "../common/env.hpp"
#include "exporters.hpp"
#include "registry.hpp"
#include "span.hpp"
#include "trace.hpp"

namespace spgemm::telemetry {

namespace detail {

namespace {
int initial_enabled() {
  // Explicit SPGEMM_TELEMETRY wins; otherwise a configured export directory
  // implies the user wants data collected.
  const char* flag = std::getenv("SPGEMM_TELEMETRY");
  if (flag != nullptr) return env::get_bool("SPGEMM_TELEMETRY", false) ? 1 : 0;
  const char* dir = std::getenv("SPGEMM_TELEMETRY_DIR");
  return (dir != nullptr && dir[0] != '\0') ? 1 : 0;
}
}  // namespace

std::atomic<int> g_enabled{initial_enabled()};

}  // namespace detail

bool set_enabled(bool on) noexcept {
  return detail::g_enabled.exchange(on ? 1 : 0, std::memory_order_relaxed) !=
         0;
}

std::vector<double> default_seconds_bounds() {
  std::vector<double> b;
  b.reserve(26);
  double v = 1e-6;
  for (int k = 0; k < 26; ++k, v *= 2.0) b.push_back(v);
  return b;
}

// ---- Registry --------------------------------------------------------------

namespace {
std::string metric_key(std::string_view name, std::string_view label_key,
                       std::string_view label_value) {
  std::string k;
  k.reserve(name.size() + label_key.size() + label_value.size() + 2);
  k.append(name);
  k.push_back('\x1f');
  k.append(label_key);
  k.push_back('\x1f');
  k.append(label_value);
  return k;
}
}  // namespace

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          std::string_view help,
                                          std::string_view label_key,
                                          std::string_view label_value,
                                          char kind) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = metric_key(name, label_key, label_value);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return *it->second;
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->label_key = std::string(label_key);
  entry->label_value = std::string(label_value);
  entry->kind = kind;
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_key_.emplace(key, raw);
  return *raw;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::string_view label_key,
                           std::string_view label_value) {
  Entry& e = find_or_create(name, help, label_key, label_value, 'c');
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view label_key,
                       std::string_view label_value) {
  Entry& e = find_or_create(name, help, label_key, label_value, 'g');
  if (!e.g) e.g = std::make_unique<Gauge>();
  return *e.g;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds,
                               std::string_view label_key,
                               std::string_view label_value) {
  Entry& e = find_or_create(name, help, label_key, label_value, 'h');
  if (!e.h) e.h = std::make_unique<Histogram>(std::move(bounds));
  return *e.h;
}

Histogram& Registry::phase_histogram(std::string_view phase) {
  return histogram("spgemm_phase_seconds",
                   "Duration of instrumented phases (TELEM_SPAN scopes).",
                   default_seconds_bounds(), "phase", phase);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ep : entries_) {
    const Entry& e = *ep;
    switch (e.kind) {
      case 'c':
        snap.counters.push_back(
            {e.name, e.help, e.label_key, e.label_value, e.c->value()});
        break;
      case 'g':
        snap.gauges.push_back(
            {e.name, e.help, e.label_key, e.label_value, e.g->value()});
        break;
      case 'h': {
        Histogram::Folded f = e.h->fold();
        snap.histograms.push_back({e.name, e.help, e.label_key, e.label_value,
                                   e.h->bounds(), std::move(f.buckets), f.sum,
                                   f.count});
        break;
      }
      default:
        break;
    }
  }
  return snap;
}

Registry& registry() {
  static Registry reg;
  return reg;
}

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void phase_observe(const char* phase, double seconds) {
  if (!enabled()) return;
  // The per-site static in TELEM_SPAN does not apply here (phase is a runtime
  // argument), so pay the registry lookup; callers are per-multiply, not
  // per-row, so this is off the hot path.
  registry().phase_histogram(phase).observe(seconds);
}

// ---- Chrome trace writer ---------------------------------------------------

namespace {
void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
}
}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const TraceRing*>& rings) {
  std::vector<TraceEvent> events;
  for (const TraceRing* r : rings) {
    if (r == nullptr) continue;
    std::vector<TraceEvent> part = r->snapshot();
    events.insert(events.end(), part.begin(), part.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  const std::uint64_t base =
      events.empty() ? 0 : events.front().ts_ns;

  os << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  // Track-naming metadata so chrome://tracing labels lane vs overlay rows.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> tracks;
  for (const TraceEvent& e : events) tracks[{e.pid, e.tid}] = true;
  for (const auto& [track, unused] : tracks) {
    (void)unused;
    if (!first) os << ",";
    first = false;
    const char* tname = track.second == 0 ? "lane" : "worker";
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.first
       << ",\"tid\":" << track.second << ",\"args\":{\"name\":\"" << tname;
    if (track.second != 0) os << "-" << (track.second - 1);
    os << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    std::string line;
    line.reserve(160);
    line.append("{\"name\":\"");
    json_escape_into(line, e.name);
    line.append("\",\"cat\":\"");
    json_escape_into(line, e.cat);
    line.append("\",\"ph\":\"");
    line.push_back(e.ph);
    line.append("\",\"ts\":");
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.ts_ns - base) * 1e-3);
    line.append(buf);
    if (e.ph == 'X') {
      line.append(",\"dur\":");
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(e.dur_ns) * 1e-3);
      line.append(buf);
    }
    if (e.ph == 'i') line.append(",\"s\":\"t\"");
    std::snprintf(buf, sizeof(buf), ",\"pid\":%u,\"tid\":%u", e.pid, e.tid);
    line.append(buf);
    line.append(",\"args\":{");
    std::snprintf(buf, sizeof(buf), "\"trace_id\":%" PRIu64, e.trace_id);
    line.append(buf);
    if (e.arg_name != nullptr) {
      line.append(",\"");
      json_escape_into(line, e.arg_name);
      std::snprintf(buf, sizeof(buf), "\":%" PRIu64, e.arg);
      line.append(buf);
    }
    line.append("}}");
    os << line;
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

// ---- Exporters -------------------------------------------------------------

namespace {

void write_number(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

std::string prom_sample_labels(const std::string& label_key,
                               const std::string& label_value,
                               const char* extra_key = nullptr,
                               const std::string& extra_value = {}) {
  std::string out;
  const bool has_pair = !label_key.empty();
  const bool has_extra = extra_key != nullptr;
  if (!has_pair && !has_extra) return out;
  out.push_back('{');
  if (has_pair) {
    out.append(label_key);
    out.append("=\"");
    out.append(label_value);
    out.push_back('"');
  }
  if (has_extra) {
    if (has_pair) out.push_back(',');
    out.append(extra_key);
    out.append("=\"");
    out.append(extra_value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

template <typename Sample>
void prom_family_header(std::ostream& os, const Sample& s, const char* type,
                        std::vector<std::string>& declared) {
  if (std::find(declared.begin(), declared.end(), s.name) != declared.end())
    return;
  declared.push_back(s.name);
  os << "# HELP " << s.name << " "
     << (s.help.empty() ? std::string("(no help)") : s.help) << "\n";
  os << "# TYPE " << s.name << " " << type << "\n";
}

std::string format_le(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return std::string(buf);
}

}  // namespace

void export_prometheus(std::ostream& os, const Snapshot& snap) {
  std::vector<std::string> declared;
  for (const auto& c : snap.counters) {
    prom_family_header(os, c, "counter", declared);
    os << c.name << prom_sample_labels(c.label_key, c.label_value) << " "
       << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    prom_family_header(os, g, "gauge", declared);
    os << g.name << prom_sample_labels(g.label_key, g.label_value) << " ";
    write_number(os, g.value);
    os << "\n";
  }
  for (const auto& h : snap.histograms) {
    prom_family_header(os, h, "histogram", declared);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      const std::string le =
          b < h.bounds.size() ? format_le(h.bounds[b]) : std::string("+Inf");
      os << h.name << "_bucket"
         << prom_sample_labels(h.label_key, h.label_value, "le", le) << " "
         << cum << "\n";
    }
    os << h.name << "_sum"
       << prom_sample_labels(h.label_key, h.label_value) << " ";
    write_number(os, h.sum);
    os << "\n";
    os << h.name << "_count"
       << prom_sample_labels(h.label_key, h.label_value) << " " << h.count
       << "\n";
  }
}

void export_prometheus(std::ostream& os) {
  export_prometheus(os, registry().snapshot());
}

namespace {
void json_labels(std::ostream& os, const std::string& key,
                 const std::string& value) {
  os << "\"labels\":{";
  if (!key.empty()) os << "\"" << key << "\":\"" << value << "\"";
  os << "}";
}
}  // namespace

void export_json(std::ostream& os, const Snapshot& snap) {
  os << "{\"counters\":[";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << c.name << "\",";
    json_labels(os, c.label_key, c.label_value);
    os << ",\"value\":" << c.value << "}";
  }
  os << "],\"gauges\":[";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << g.name << "\",";
    json_labels(os, g.label_key, g.label_value);
    os << ",\"value\":";
    write_number(os, g.value);
    os << "}";
  }
  os << "],\"histograms\":[";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << h.name << "\",";
    json_labels(os, h.label_key, h.label_value);
    os << ",\"count\":" << h.count << ",\"sum\":";
    write_number(os, h.sum);
    os << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ",";
      os << "{\"le\":";
      if (b < h.bounds.size()) {
        write_number(os, h.bounds[b]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h.buckets[b] << "}";
    }
    os << "]}";
  }
  os << "]}";
}

void export_json(std::ostream& os) { export_json(os, registry().snapshot()); }

std::string export_json_string() {
  std::ostringstream oss;
  export_json(oss);
  return oss.str();
}

// ---- Periodic file exporter ------------------------------------------------

const std::string& export_dir() {
  static const std::string dir = env::get_string("SPGEMM_TELEMETRY_DIR", "");
  return dir;
}

namespace {

void write_snapshot_files(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const Snapshot snap = registry().snapshot();
  {
    // Write-then-rename so scrapers never observe a half-written file.
    const std::string tmp = dir + "/.metrics.prom.tmp";
    std::ofstream os(tmp, std::ios::trunc);
    if (os) {
      export_prometheus(os, snap);
      os.close();
      std::filesystem::rename(tmp, dir + "/metrics.prom", ec);
    }
  }
  {
    const std::string tmp = dir + "/.metrics.json.tmp";
    std::ofstream os(tmp, std::ios::trunc);
    if (os) {
      export_json(os, snap);
      os.close();
      std::filesystem::rename(tmp, dir + "/metrics.json", ec);
    }
  }
}

/// Background flusher.  Process-wide singleton; joined at static destruction.
class FileExporter {
 public:
  explicit FileExporter(std::string dir, std::int64_t interval_ms)
      : dir_(std::move(dir)),
        interval_ms_(interval_ms < 100 ? 100 : interval_ms),
        worker_([this] { loop(); }) {}

  ~FileExporter() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
    write_snapshot_files(dir_);  // final flush at exit
  }

  void flush_now() { write_snapshot_files(dir_); }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_; });
      if (stop_) break;
      lk.unlock();
      write_snapshot_files(dir_);
      lk.lock();
    }
  }

  std::string dir_;
  std::int64_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread worker_;
};

std::mutex g_exporter_mu;
FileExporter* g_exporter = nullptr;  // owned by the static below once started

FileExporter* exporter_instance() {
  std::lock_guard<std::mutex> lk(g_exporter_mu);
  if (g_exporter == nullptr && !export_dir().empty()) {
    // Touch the registry before constructing the exporter: function-local
    // statics are destroyed in reverse construction order, and the exporter's
    // destructor takes a final snapshot — the registry must outlive it.
    registry();
    static FileExporter exporter(
        export_dir(), env::get_int("SPGEMM_TELEMETRY_INTERVAL_MS", 5000));
    g_exporter = &exporter;
  }
  return g_exporter;
}

}  // namespace

bool ensure_periodic_exporter() { return exporter_instance() != nullptr; }

void flush_export_now() {
  FileExporter* e = exporter_instance();
  if (e != nullptr) e->flush_now();
}

}  // namespace spgemm::telemetry
