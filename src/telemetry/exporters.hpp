// Snapshot exporters: Prometheus text exposition format, JSON, and the
// env-driven periodic file exporter (SPGEMM_TELEMETRY_DIR).
#pragma once

#include <ostream>
#include <string>

#include "registry.hpp"

namespace spgemm::telemetry {

/// Prometheus text exposition format (# HELP / # TYPE per metric family,
/// cumulative histogram buckets with a +Inf terminator).
void export_prometheus(std::ostream& os, const Snapshot& snap);
void export_prometheus(std::ostream& os);  ///< of the global registry

/// JSON snapshot: {"counters":[...],"gauges":[...],"histograms":[...]}.
void export_json(std::ostream& os, const Snapshot& snap);
void export_json(std::ostream& os);  ///< of the global registry

/// JSON snapshot of the global registry as a string (bench embedding).
std::string export_json_string();

/// Directory from SPGEMM_TELEMETRY_DIR ("" when unset).
const std::string& export_dir();

/// Start the process-wide periodic file exporter if SPGEMM_TELEMETRY_DIR is
/// set and it is not already running.  Writes metrics.prom + metrics.json to
/// the directory every SPGEMM_TELEMETRY_INTERVAL_MS (default 5000) ms.
/// Returns true when exporting is active.  Idempotent, thread-safe.
bool ensure_periodic_exporter();

/// Synchronously write metrics.prom + metrics.json to export_dir() (no-op
/// when unset).  Engines call this when they stop so short-lived processes
/// still leave a snapshot behind.
void flush_export_now();

}  // namespace spgemm::telemetry
