#include "model/memory_model.hpp"

#include <algorithm>
#include <cmath>

#if defined(__linux__)
#include <sys/stat.h>

#include <cstdio>
#endif

namespace spgemm::model {

TierParams knl_ddr() {
  TierParams t;
  t.latency_ns = 200.0;
  t.thread_bw_gbps = 8.0;
  t.peak_bw_gbps = 90.0;
  t.capacity_gb = 96.0;
  return t;
}

TierParams knl_mcdram_cache() {
  TierParams t;
  // Cache mode adds a tag-check to every access: slightly worse latency
  // than DDR (the paper: "its memory latency is larger than that of DDR4").
  t.latency_ns = 212.0;
  t.thread_bw_gbps = 9.0;
  t.peak_bw_gbps = 306.0;  // 3.4x the DDR peak (paper Fig. 5)
  t.capacity_gb = 16.0;
  return t;
}

TierParams host_fast_tier() {
  TierParams t;
  // A shared LLC: ~20 ns load-to-use, per-core fills far faster than DRAM
  // streams, aggregate bandwidth well above any DRAM tier, tens of MB.
  t.latency_ns = 20.0;
  t.thread_bw_gbps = 32.0;
  t.peak_bw_gbps = 400.0;
  t.capacity_gb = 0.032;
  return t;
}

TierParams degraded_tier(const TierParams& base, int step) {
  TierParams t = base;
  for (int i = 0; i < step; ++i) t.capacity_gb /= 4.0;
  t.capacity_gb = std::max(t.capacity_gb, 1e-3);  // 1 MB floor
  return t;
}

double stanza_bandwidth_gbps(const TierParams& tier, double stanza_bytes,
                             int threads) {
  const double s = std::max(1.0, stanza_bytes);
  const double per_thread_time_ns =
      tier.latency_ns + s / tier.thread_bw_gbps;  // GB/s == bytes/ns
  const double aggregate = static_cast<double>(threads) * s /
                           per_thread_time_ns;
  return std::min(tier.peak_bw_gbps, aggregate);
}

double modeled_time_s(const TierParams& tier, const TierParams& fallback,
                      const std::vector<AccessComponent>& mix, int threads,
                      double working_set_gb) {
  // Fraction of accesses resident in this tier; the rest spill to fallback.
  const double resident =
      working_set_gb <= tier.capacity_gb
          ? 1.0
          : tier.capacity_gb / working_set_gb;
  // A capacity miss in cache mode is dearer than fallback-only access: the
  // tag check in this tier is paid first, then the fallback transfer (the
  // mechanism behind the paper's Heap degradation at edge factor 64).
  TierParams penalized = fallback;
  penalized.latency_ns += tier.latency_ns;
  double seconds = 0.0;
  for (const AccessComponent& c : mix) {
    const double bw_hit = stanza_bandwidth_gbps(tier, c.stanza_bytes, threads);
    const double bw_miss =
        stanza_bandwidth_gbps(penalized, c.stanza_bytes, threads);
    const double gb = c.bytes / 1e9;
    seconds += resident * gb / bw_hit + (1.0 - resident) * gb / bw_miss;
  }
  return seconds;
}

std::vector<AccessComponent> spgemm_access_mix(AccessPattern pattern,
                                               double flop, double nnz_out,
                                               double edge_factor,
                                               bool sorted_output) {
  // Bytes per nonzero: 4-byte column index + 8-byte value.
  constexpr double kEntry = 12.0;
  std::vector<AccessComponent> mix;

  // (1) Reads of rows of B: every scalar multiplication touches one entry.
  // The hash family consumes each row of B contiguously — a stanza of
  // edge_factor entries — which is what lets denser matrices exploit
  // MCDRAM (§3.3).  Heap SpGEMM interleaves its nnz(a_i*) merge streams,
  // so its effective DRAM granularity stays one entry regardless of
  // density — the "fine-grained accesses" the paper blames for Heap's
  // missing MCDRAM benefit.
  const double b_stanza = pattern == AccessPattern::kHeap
                              ? 16.0
                              : std::max(8.0, edge_factor * kEntry);
  mix.push_back({flop * kEntry, b_stanza});

  // (2) Accumulator traffic that actually reaches DRAM.  Per-thread hash
  // tables and heaps are sized to one row's flop and stay mostly cache-
  // resident; the spill fraction that misses fetches whole cache lines
  // (64 B) for the hash family, while heap sift chains touch scattered
  // 16-byte entries.
  const double spill_fraction = pattern == AccessPattern::kHeap
                                    ? 0.40
                                    : pattern == AccessPattern::kHash
                                          ? 0.10
                                          : 0.06;
  const double granule = pattern == AccessPattern::kHeap ? 16.0 : 64.0;
  mix.push_back({flop * spill_fraction * kEntry, granule});

  // (3) Streaming output write (plus a sort pass when sorted).
  mix.push_back({nnz_out * kEntry * (sorted_output ? 2.0 : 1.0), 4096.0});
  return mix;
}

std::size_t csr_bytes_estimate(std::size_t nnz, std::size_t nrows,
                               std::size_t bytes_per_entry) {
  return nnz * bytes_per_entry + (nrows + 1) * sizeof(Offset);
}

std::size_t monolithic_bytes_estimate(Offset flop, std::size_t nrows,
                                      std::size_t bytes_per_entry) {
  const auto f = static_cast<std::size_t>(std::max<Offset>(flop, 0));
  // Output upper bound (nnz(C) <= flop) plus ~1/8 of it again for the
  // accumulator tables and capture scratch the plan claims alongside.
  const std::size_t out = csr_bytes_estimate(f, nrows, bytes_per_entry);
  return out + out / 8;
}

std::size_t fused_epilogue_savings_estimate(Offset nnz_intermediate,
                                            std::size_t nrows,
                                            std::size_t bytes_per_entry) {
  const auto nnz =
      static_cast<std::size_t>(std::max<Offset>(nnz_intermediate, 0));
  return csr_bytes_estimate(nnz, nrows, bytes_per_entry);
}

BlockGrid choose_block_grid(Offset nnz_a, Offset nnz_b, Offset flop,
                            std::size_t nrows, std::size_t ncols,
                            std::size_t inner_dim,
                            std::size_t memory_budget_bytes,
                            const TierParams& tier,
                            std::size_t bytes_per_entry) {
  BlockGrid grid;
  if (nrows == 0 || ncols == 0 || inner_dim == 0) return grid;
  std::size_t budget = memory_budget_bytes;
  if (budget == 0) {
    budget = static_cast<std::size_t>(tier.capacity_gb * 0.5 * 1e9);
  }
  budget = std::max<std::size_t>(budget, std::size_t{64} << 10);

  const auto a_nnz = static_cast<std::size_t>(std::max<Offset>(nnz_a, 0));
  const auto b_nnz = static_cast<std::size_t>(std::max<Offset>(nnz_b, 0));
  const auto f = static_cast<std::size_t>(std::max<Offset>(flop, 0));

  // Working set of one C-block request at grid (gr, gc): the A row panel
  // (1/gr of A), the B column panel (1/gc of B) and the C block's
  // flop-bound output estimate.  Half the budget is reserved for the shard
  // store's resident set, so the request targets the other half.
  const std::size_t target = budget / 2;
  auto working_set = [&](std::size_t gr, std::size_t gc) {
    const std::size_t a_panel =
        csr_bytes_estimate(a_nnz / gr + 1, nrows / gr + 1, bytes_per_entry);
    const std::size_t b_panel =
        csr_bytes_estimate(b_nnz / gc + 1, inner_dim, bytes_per_entry);
    const std::size_t c_block = csr_bytes_estimate(
        f / (gr * gc) + 1, nrows / gr + 1, bytes_per_entry);
    return a_panel + b_panel + c_block + c_block / 8;
  };

  // Refine the grid square-ish: double whichever axis buys the larger
  // working-set reduction until the request fits or both axes hit their
  // dimension clamp (best effort past that).
  std::size_t gr = 1;
  std::size_t gc = 1;
  while (working_set(gr, gc) > target) {
    const bool can_r = gr * 2 <= nrows;
    const bool can_c = gc * 2 <= ncols;
    if (!can_r && !can_c) break;
    if (can_r && (!can_c || working_set(gr * 2, gc) <= working_set(gr, gc * 2))) {
      gr *= 2;
    } else {
      gc *= 2;
    }
  }
  grid.grid_rows = gr;
  grid.grid_cols = gc;

  // Inner splitting: one operand shard is the spill/load granule; keep it
  // at or below 1/8 of the budget so the store can always make eviction
  // progress without spilling the block it is about to use.
  const std::size_t shard_target = std::max<std::size_t>(budget / 8, 1);
  const std::size_t a_stripe =
      csr_bytes_estimate(a_nnz / gr + 1, nrows / gr + 1, bytes_per_entry);
  const std::size_t b_stripe =
      csr_bytes_estimate(b_nnz / gc + 1, inner_dim, bytes_per_entry);
  const std::size_t widest = std::max(a_stripe, b_stripe);
  std::size_t gi = (widest + shard_target - 1) / shard_target;
  gi = std::max<std::size_t>(gi, 1);
  gi = std::min(gi, inner_dim);
  grid.grid_inner = gi;
  return grid;
}

int detect_numa_nodes() {
#if defined(__linux__)
  // Probe node0, node1, ... until one is missing.  dirent iteration would
  // also work but stat() of the known layout keeps this allocation-free.
  int nodes = 0;
  for (int n = 0; n < 1024; ++n) {
    char path[64];
    std::snprintf(path, sizeof(path), "/sys/devices/system/node/node%d", n);
    struct stat st{};
    if (stat(path, &st) != 0 || !S_ISDIR(st.st_mode)) break;
    ++nodes;
  }
  if (nodes > 0) return nodes;
#endif
  return 1;
}

int choose_engine_pools(int requested, int workers) {
  if (workers < 1) workers = 1;
  const int pools = requested > 0 ? requested : detect_numa_nodes();
  return std::clamp(pools, 1, workers);
}

double mcdram_speedup(AccessPattern pattern, double flop, double nnz_out,
                      double edge_factor, bool sorted_output,
                      double working_set_gb, int threads) {
  const std::vector<AccessComponent> mix =
      spgemm_access_mix(pattern, flop, nnz_out, edge_factor, sorted_output);
  const TierParams ddr = knl_ddr();
  const TierParams mc = knl_mcdram_cache();
  const double t_ddr = modeled_time_s(ddr, ddr, mix, threads,
                                      working_set_gb);
  const double t_mc = modeled_time_s(mc, ddr, mix, threads, working_set_gb);
  return t_ddr / t_mc;
}

}  // namespace spgemm::model
