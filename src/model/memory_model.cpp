#include "model/memory_model.hpp"

#include <algorithm>
#include <cmath>

namespace spgemm::model {

TierParams knl_ddr() {
  TierParams t;
  t.latency_ns = 200.0;
  t.thread_bw_gbps = 8.0;
  t.peak_bw_gbps = 90.0;
  t.capacity_gb = 96.0;
  return t;
}

TierParams knl_mcdram_cache() {
  TierParams t;
  // Cache mode adds a tag-check to every access: slightly worse latency
  // than DDR (the paper: "its memory latency is larger than that of DDR4").
  t.latency_ns = 212.0;
  t.thread_bw_gbps = 9.0;
  t.peak_bw_gbps = 306.0;  // 3.4x the DDR peak (paper Fig. 5)
  t.capacity_gb = 16.0;
  return t;
}

TierParams host_fast_tier() {
  TierParams t;
  // A shared LLC: ~20 ns load-to-use, per-core fills far faster than DRAM
  // streams, aggregate bandwidth well above any DRAM tier, tens of MB.
  t.latency_ns = 20.0;
  t.thread_bw_gbps = 32.0;
  t.peak_bw_gbps = 400.0;
  t.capacity_gb = 0.032;
  return t;
}

TierParams degraded_tier(const TierParams& base, int step) {
  TierParams t = base;
  for (int i = 0; i < step; ++i) t.capacity_gb /= 4.0;
  t.capacity_gb = std::max(t.capacity_gb, 1e-3);  // 1 MB floor
  return t;
}

double stanza_bandwidth_gbps(const TierParams& tier, double stanza_bytes,
                             int threads) {
  const double s = std::max(1.0, stanza_bytes);
  const double per_thread_time_ns =
      tier.latency_ns + s / tier.thread_bw_gbps;  // GB/s == bytes/ns
  const double aggregate = static_cast<double>(threads) * s /
                           per_thread_time_ns;
  return std::min(tier.peak_bw_gbps, aggregate);
}

double modeled_time_s(const TierParams& tier, const TierParams& fallback,
                      const std::vector<AccessComponent>& mix, int threads,
                      double working_set_gb) {
  // Fraction of accesses resident in this tier; the rest spill to fallback.
  const double resident =
      working_set_gb <= tier.capacity_gb
          ? 1.0
          : tier.capacity_gb / working_set_gb;
  // A capacity miss in cache mode is dearer than fallback-only access: the
  // tag check in this tier is paid first, then the fallback transfer (the
  // mechanism behind the paper's Heap degradation at edge factor 64).
  TierParams penalized = fallback;
  penalized.latency_ns += tier.latency_ns;
  double seconds = 0.0;
  for (const AccessComponent& c : mix) {
    const double bw_hit = stanza_bandwidth_gbps(tier, c.stanza_bytes, threads);
    const double bw_miss =
        stanza_bandwidth_gbps(penalized, c.stanza_bytes, threads);
    const double gb = c.bytes / 1e9;
    seconds += resident * gb / bw_hit + (1.0 - resident) * gb / bw_miss;
  }
  return seconds;
}

std::vector<AccessComponent> spgemm_access_mix(AccessPattern pattern,
                                               double flop, double nnz_out,
                                               double edge_factor,
                                               bool sorted_output) {
  // Bytes per nonzero: 4-byte column index + 8-byte value.
  constexpr double kEntry = 12.0;
  std::vector<AccessComponent> mix;

  // (1) Reads of rows of B: every scalar multiplication touches one entry.
  // The hash family consumes each row of B contiguously — a stanza of
  // edge_factor entries — which is what lets denser matrices exploit
  // MCDRAM (§3.3).  Heap SpGEMM interleaves its nnz(a_i*) merge streams,
  // so its effective DRAM granularity stays one entry regardless of
  // density — the "fine-grained accesses" the paper blames for Heap's
  // missing MCDRAM benefit.
  const double b_stanza = pattern == AccessPattern::kHeap
                              ? 16.0
                              : std::max(8.0, edge_factor * kEntry);
  mix.push_back({flop * kEntry, b_stanza});

  // (2) Accumulator traffic that actually reaches DRAM.  Per-thread hash
  // tables and heaps are sized to one row's flop and stay mostly cache-
  // resident; the spill fraction that misses fetches whole cache lines
  // (64 B) for the hash family, while heap sift chains touch scattered
  // 16-byte entries.
  const double spill_fraction = pattern == AccessPattern::kHeap
                                    ? 0.40
                                    : pattern == AccessPattern::kHash
                                          ? 0.10
                                          : 0.06;
  const double granule = pattern == AccessPattern::kHeap ? 16.0 : 64.0;
  mix.push_back({flop * spill_fraction * kEntry, granule});

  // (3) Streaming output write (plus a sort pass when sorted).
  mix.push_back({nnz_out * kEntry * (sorted_output ? 2.0 : 1.0), 4096.0});
  return mix;
}

double mcdram_speedup(AccessPattern pattern, double flop, double nnz_out,
                      double edge_factor, bool sorted_output,
                      double working_set_gb, int threads) {
  const std::vector<AccessComponent> mix =
      spgemm_access_mix(pattern, flop, nnz_out, edge_factor, sorted_output);
  const TierParams ddr = knl_ddr();
  const TierParams mc = knl_mcdram_cache();
  const double t_ddr = modeled_time_s(ddr, ddr, mix, threads,
                                      working_set_gb);
  const double t_mc = modeled_time_s(mc, ddr, mix, threads, working_set_gb);
  return t_ddr / t_mc;
}

}  // namespace spgemm::model
