// Parametric two-tier memory model: the MCDRAM hardware substitution.
//
// This machine has no Knights Landing MCDRAM, so the paper's Fig. 5
// (stanza bandwidth, DDR vs MCDRAM-as-cache) and Fig. 10 (MCDRAM speedup of
// SpGEMM vs edge factor) are reproduced analytically.  The model is
// Little's-law style: a thread issuing stanza transfers of s bytes pays a
// fixed latency per stanza plus s over its per-thread streaming bandwidth;
// aggregate bandwidth across T threads saturates at the tier's peak:
//
//   BW(s) = min( peak_bw,  T * s / (latency + s / thread_bw) )
//
// Defaults are calibrated to the paper's observations: MCDRAM peak 3.4x the
// DDR peak, slightly higher latency, little benefit below ~256-byte
// stanzas, and a capacity cliff at 16 GB (Fig. 10, Heap at edge factor 64).
// The *measured* stanza microbenchmark (src/microbench/stanza.*) exercises
// the same access pattern on the host's real memory.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace spgemm::model {

struct TierParams {
  double latency_ns = 200.0;     ///< per-stanza fixed cost
  double thread_bw_gbps = 8.0;   ///< single-thread streaming bandwidth
  double peak_bw_gbps = 90.0;    ///< socket-level saturation bandwidth
  double capacity_gb = 1e9;      ///< tier capacity (cache-mode cliff)

  bool operator==(const TierParams&) const = default;
};

/// KNL DDR4 (6 channels, ~90 GB/s STREAM).
TierParams knl_ddr();
/// KNL MCDRAM in cache mode: 3.4x DDR peak, higher latency, 16 GB.
TierParams knl_mcdram_cache();
/// The fast tier of a generic multicore host: a shared last-level cache
/// (~32 MB, low latency, high bandwidth).  This is the default fast tier
/// the ExecutionSchedule budgets target when SpGemmOptions::budget_source
/// is kMemoryModel and no explicit tier is given — on KNL one would pass
/// knl_mcdram_cache() instead.
TierParams host_fast_tier();

/// Progressively smaller fast-tier model for the serving engine's
/// memory-pressure degradation ladder (engine/spgemm_engine.hpp): step k
/// models the same tier with 1/4^k the capacity, floored at 1 MB, so
/// derive_schedule_budgets yields smaller tiles and capture budgets on each
/// retry.  Latency and bandwidth are unchanged — under memory pressure the
/// tier is not slower, there is just less of it to claim.
TierParams degraded_tier(const TierParams& base, int step);

/// Aggregate bandwidth for stanza transfers of `stanza_bytes`.
double stanza_bandwidth_gbps(const TierParams& tier, double stanza_bytes,
                             int threads);

/// One class of accesses an algorithm performs: `bytes` moved in stanzas of
/// `stanza_bytes`.
struct AccessComponent {
  double bytes = 0.0;
  double stanza_bytes = 8.0;
};

/// Modeled transfer time (seconds) of a component mix on one tier.  When
/// the working set exceeds the tier's capacity, the overflow fraction is
/// charged at `fallback` (the paper's cache-mode behaviour: misses go to
/// DDR).
double modeled_time_s(const TierParams& tier, const TierParams& fallback,
                      const std::vector<AccessComponent>& mix, int threads,
                      double working_set_gb);

/// Which accumulator's access profile to model (Fig. 10 series).
enum class AccessPattern {
  kHeap,
  kHash,
  kHashVector,
};

/// Build the access-component mix of one SpGEMM run (paper §3.3's three
/// access types: streaming row pointers / output, stanza reads of B rows,
/// accumulator traffic).
std::vector<AccessComponent> spgemm_access_mix(AccessPattern pattern,
                                               double flop, double nnz_out,
                                               double edge_factor,
                                               bool sorted_output);

/// Modeled MCDRAM-cache speedup over DDR-only for one SpGEMM configuration
/// (the y-axis of Fig. 10).
double mcdram_speedup(AccessPattern pattern, double flop, double nnz_out,
                      double edge_factor, bool sorted_output,
                      double working_set_gb, int threads = 64);

// ---- Engine worker-pool sizing (engine/spgemm_engine.hpp) -----------------

/// Number of NUMA nodes the host exposes (Linux: count of
/// /sys/devices/system/node/node<N> directories).  Returns 1 when the
/// topology is not detectable (non-Linux, sysfs unavailable) — a safe
/// single-pool default, never 0.
int detect_numa_nodes();

/// Number of dispatcher pools for the serving engine: one per NUMA node so
/// repeated products stay cache- and memory-local, but never more pools
/// than workers (each pool needs at least one worker).  `requested` > 0
/// short-circuits detection (the SPGEMM_ENGINE_POOLS / EngineOptions::pools
/// override CI uses to exercise the multi-pool path on one node).
int choose_engine_pools(int requested, int workers);

// ---- Block-sharded execution sizing (shard/) ------------------------------

/// A 2D blocking decision for the sharded driver (shard/sharded_spgemm.hpp):
/// C is computed as a grid_rows x grid_cols grid of blocks, A is stored as
/// grid_rows x grid_inner block-CSR shards and B as grid_inner x grid_cols.
struct BlockGrid {
  std::size_t grid_rows = 1;
  std::size_t grid_cols = 1;
  /// Storage splitting of the inner (k) dimension — the spill granularity
  /// of the operand shards; the C grid itself is grid_rows x grid_cols.
  std::size_t grid_inner = 1;
};

/// Rough DRAM footprint of one CSR body: nnz entries (index + value) plus
/// the row-pointer array.  The common currency of every blocking estimate.
std::size_t csr_bytes_estimate(std::size_t nnz, std::size_t nrows,
                               std::size_t bytes_per_entry);

/// Conservative extra-DRAM estimate of a monolithic A*B: the output's upper
/// bound (nnz(C) <= flop) plus one entry of accumulator scratch per flop
/// share.  This is what the budget gate of shard::multiply_in_core tests a
/// caller-set memory budget against — inputs are caller-owned and excluded.
std::size_t monolithic_bytes_estimate(Offset flop, std::size_t nrows,
                                      std::size_t bytes_per_entry);

/// Conservative floor on the peak-RSS a fused epilogue pipeline
/// (core/spgemm_twophase.hpp epilogues, core/spgemm_rap.hpp) saves over
/// unfused multiply-then-postprocess: the intermediate CSR's VALUES array
/// plus its row pointers.  The intermediate's 4-byte column indices are
/// deliberately left out as headroom — the fused path stages its kept
/// entries (and a copy of the kept output) at peak, which cancels part of
/// the full intermediate, so asserting the full csr_bytes_estimate would
/// overclaim.  The epilogue ablation bench and the CI peak-RSS gate use
/// this as the minimum saving fusion must demonstrate.
std::size_t fused_epilogue_savings_estimate(Offset nnz_intermediate,
                                            std::size_t nrows,
                                            std::size_t bytes_per_entry = 8);

/// Choose the block grid for one sharded product under a memory budget:
/// the per-C-block working set (one A row panel + one B column panel + the
/// C block's flop-bound output estimate) must fit inside half the budget
/// (the other half stays with the shard store's resident set), and the
/// inner dimension is split so one operand shard stays at or below 1/8 of
/// the budget — the spill/load granule.  `memory_budget_bytes` == 0 derives
/// the budget from half the tier's capacity.  Monotone: a smaller budget
/// never yields a coarser grid.  Grid counts never exceed the matrix
/// dimensions and are best-effort: at the dimension clamp the working set
/// may still exceed a pathologically small budget.
BlockGrid choose_block_grid(Offset nnz_a, Offset nnz_b, Offset flop,
                            std::size_t nrows, std::size_t ncols,
                            std::size_t inner_dim,
                            std::size_t memory_budget_bytes,
                            const TierParams& tier,
                            std::size_t bytes_per_entry = 12);

}  // namespace spgemm::model
