// Analytic accumulation-cost model (paper §4.2.4, Eqs. 1-2).
//
//   T_heap = sum_i flop(c_i*) * log2 nnz(a_i*)                      (Eq. 1)
//   T_hash = flop * c + sum_i nnz(c_i*) * log2 nnz(c_i*)  [if sorted] (Eq. 2)
//
// with c the hash collision factor (average probes per detect/insert).
// The model underlies the recipe: Hash wins when nnz(c_i*) or the per-row
// compression factor flop(c_i*)/nnz(c_i*) is large; Heap wins on very
// sparse, low-CR products.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "matrix/csr.hpp"
#include "matrix/stats.hpp"
#include "model/memory_model.hpp"

namespace spgemm::model {

/// A-priori hash collision factor (probes per scalar multiplication) used
/// wherever no measurement exists yet — the tiled driver's kAuto decision
/// and the CostInputs default.  SpGemmHandle::collision_factor() supplies the
/// measured value once a symbolic pass has run.
inline constexpr double kDefaultCollisionFactor = 1.2;

/// Inputs the closed-form estimates need; obtainable from a symbolic pass
/// or an actual product.
struct CostInputs {
  Offset flop = 0;                ///< total scalar multiplications
  double sum_flop_log_nnz_a = 0;  ///< sum_i flop(c_i*) * log2 max(2,nnz(a_i*))
  double sum_nnz_log_nnz_c = 0;   ///< sum_i nnz(c_i*) * log2 max(2,nnz(c_i*))
  double collision_factor = kDefaultCollisionFactor;  ///< measured or assumed
};

/// Estimated abstract cost of Heap SpGEMM (Eq. 1).
double heap_cost(const CostInputs& in);

/// Estimated abstract cost of Hash SpGEMM (Eq. 2); `sorted` adds the
/// per-row sort term.
double hash_cost(const CostInputs& in, bool sorted);

/// log2 clamped below at 1 (log2 of anything < 2): heap/sort costs never
/// vanish entirely for singleton rows.
double log2_at_least2(double x);

// ---- Tiled-driver planning (core/spgemm_twophase.hpp) ---------------------

/// Default per-thread byte budget for captured slot streams (structure
/// reuse).  Sized so a whole tile's capture plus the accumulator stays well
/// inside a typical last-level-cache share.
inline constexpr std::size_t kDefaultReuseBudgetBytes = std::size_t{8} << 20;

/// Default per-thread capture budget for a PERSISTENT plan
/// (core/spgemm_handle.hpp).  A handle's slot streams live across many
/// execute() calls, so the budget trades memory for repeated numeric-phase
/// time rather than cache residency within one multiply — it is therefore
/// much larger than the one-shot reuse budget.  The actual allocation is
/// still bounded by 2x the planned flop, so small products never pay it.
inline constexpr std::size_t kDefaultPlanBudgetBytes = std::size_t{64} << 20;

/// Capture-stream bytes a tile targets under BudgetSource::kFixed: small
/// enough to stay cache-resident between the symbolic and numeric passes of
/// the same tile.  Under BudgetSource::kMemoryModel the target is derived
/// from the modeled fast tier instead (derive_schedule_budgets).
inline constexpr std::size_t kTileCaptureTargetBytes = std::size_t{256} << 10;

/// Pick the rows-per-tile for the tiled two-phase driver: the expected
/// capture footprint of one tile (~2 * avg row flop * bytes_per_slot per
/// row) is held near kTileCaptureTargetBytes — or near half the explicit
/// reuse budget when that is smaller, so at least one full tile can always
/// be captured.  Clamped to [16, 65536] rows; never returns 0, no matter
/// how small the budget (a 0-row tile cannot make progress).
std::size_t choose_tile_rows(Offset total_flop, std::size_t nrows,
                             std::size_t reuse_budget_bytes,
                             std::size_t bytes_per_slot);

// ---- Memory-tier-derived schedule budgets (ExecutionSchedule) -------------

/// Tile and capture budgets for one ExecutionSchedule, derived from a
/// modeled memory tier rather than the fixed kTileCaptureTargetBytes
/// constant (the MCDRAM-aware sizing of paper Figs. 5/10: size the working
/// set to the fast tier, not to a cache constant).
struct ScheduleBudgets {
  /// Row cap per tile (>= 1).
  std::size_t tile_rows = 0;
  /// Per-tile capture-stream byte target the tile_rows figure aims at.
  std::size_t tile_target_bytes = 0;
  /// Per-thread capture budget for the whole slot-stream store.
  std::size_t capture_budget_bytes = 0;
};

/// Derive schedule budgets from the fast tier's capacity and its stanza
/// bandwidth curve:
///   * capacity: each thread gets an equal share of the tier; a tile's
///     capture stream targets 1/8 of that share so stream + accumulator +
///     staged output + touched B rows all stay resident together;
///   * bandwidth: a tile is never cut so small that the per-stanza latency
///     dominates its streaming time — the floor is the transfer size at
///     which a single stanza reaches ~98% of the thread's streaming
///     bandwidth (49 * latency * thread_bw).
/// Monotone in capacity_gb: a smaller modeled fast tier can never yield
/// more tile rows.  tile_rows >= 1 always.
ScheduleBudgets derive_schedule_budgets(const TierParams& fast_tier,
                                        int threads, Offset total_flop,
                                        std::size_t nrows,
                                        std::size_t bytes_per_slot);

/// Whether capturing the symbolic structure pays for a product with the
/// given collision factor: replay saves ~c probes per flop in the numeric
/// phase at the price of streaming one slot per flop through memory.  With
/// any realistic collision factor (>= 1) and a non-zero budget it pays; the
/// function exists so the planner's decision is explicit and testable.
bool reuse_pays(double collision_factor, std::size_t reuse_budget_bytes);

// ---- Serving-engine sizing (engine/plan_cache.hpp) ------------------------

/// Worker-lane width for one engine product under the work-conserving
/// scheduler (engine/spgemm_engine.hpp): the number of workers a large
/// product's ExecutionSchedule fans out across while the remaining workers
/// serve the small-product overlay.  One lane per `per-worker flop grain`,
/// where the grain is the flop whose capture stream (~2 slots of
/// `bytes_per_slot` per flop) fills one worker's equal share of the fast
/// tier — floored at kLaneMinFlopPerWorker so tiny products never fan out.
/// Deterministic and monotone non-decreasing in `flop`, clamped to
/// [1, pool_width].  Determinism matters beyond reproducibility: the engine
/// plans a large product with `threads = lane width`, and a cached plan
/// only replays when the requested thread count matches, so the same
/// structure must always map to the same width.
int choose_lane_width(Offset flop, const TierParams& fast_tier,
                      int pool_width, std::size_t bytes_per_slot = 8);

/// Flop floor per extra lane worker in choose_lane_width.  Matches the
/// engine's default small-product cutoff: a product one grain over the
/// cutoff gets a second worker, not the whole pool.
inline constexpr Offset kLaneMinFlopPerWorker = Offset{1} << 15;

/// Byte budget for a fingerprint-keyed plan cache backed by the given
/// memory tier: retained plans (capture streams, skeletons, pooled outputs)
/// compete with the working sets of the products they serve, so the cache
/// claims 1/8 of the tier's capacity, floored at one persistent-plan
/// budget (a cache that cannot hold a single plan is useless) and capped at
/// 8 GB (beyond which eviction pressure, not capacity, is the interesting
/// regime).  Monotone in capacity_gb between the clamps.
std::size_t derive_cache_budget_bytes(const TierParams& tier);

/// Exact flop count (scalar multiplications) of A*B in O(nnz(A)) — the
/// admission-ordering estimate of the serving engine: cheap enough to pay
/// per request, exact enough to sort heterogeneous products by work.
template <IndexType IT, ValueType VT>
Offset estimate_flop(const CsrMatrix<IT, VT>& a, const CsrMatrix<IT, VT>& b) {
  Offset flop = 0;
  for (const IT col : a.cols) {
    const auto k = static_cast<std::size_t>(col);
    flop += b.rpts[k + 1] - b.rpts[k];
  }
  return flop;
}

/// Gather CostInputs from concrete A, B and the (already computed) C.
template <IndexType IT, ValueType VT>
CostInputs gather_cost_inputs(const CsrMatrix<IT, VT>& a,
                              const CsrMatrix<IT, VT>& b,
                              const CsrMatrix<IT, VT>& c,
                              double collision_factor = kDefaultCollisionFactor) {
  CostInputs in;
  in.collision_factor = collision_factor;
  for (IT i = 0; i < a.nrows; ++i) {
    Offset row_flop = 0;
    for (Offset j = a.row_begin(i); j < a.row_end(i); ++j) {
      const auto k = static_cast<std::size_t>(
          a.cols[static_cast<std::size_t>(j)]);
      row_flop += b.rpts[k + 1] - b.rpts[k];
    }
    in.flop += row_flop;
    const double nnz_a = static_cast<double>(a.row_nnz(i));
    const double nnz_c = static_cast<double>(c.row_nnz(i));
    if (row_flop > 0 && nnz_a >= 1.0) {
      in.sum_flop_log_nnz_a +=
          static_cast<double>(row_flop) * log2_at_least2(nnz_a);
    }
    if (nnz_c >= 1.0) {
      in.sum_nnz_log_nnz_c += nnz_c * log2_at_least2(nnz_c);
    }
  }
  return in;
}

}  // namespace spgemm::model
