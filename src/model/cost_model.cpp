#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace spgemm::model {

double log2_at_least2(double x) {
  return std::log2(std::max(2.0, x));
}

double heap_cost(const CostInputs& in) {
  return in.sum_flop_log_nnz_a;
}

double hash_cost(const CostInputs& in, bool sorted) {
  double cost = static_cast<double>(in.flop) * in.collision_factor;
  if (sorted) cost += in.sum_nnz_log_nnz_c;
  return cost;
}

}  // namespace spgemm::model
