#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace spgemm::model {

double log2_at_least2(double x) {
  return std::log2(std::max(2.0, x));
}

double heap_cost(const CostInputs& in) {
  return in.sum_flop_log_nnz_a;
}

double hash_cost(const CostInputs& in, bool sorted) {
  double cost = static_cast<double>(in.flop) * in.collision_factor;
  if (sorted) cost += in.sum_nnz_log_nnz_c;
  return cost;
}

namespace {

/// Rows whose expected capture footprint (~2 * avg row flop slots per row)
/// fills `target_bytes`, clamped to [lo, hi].  The lower clamp is applied
/// last so no budget, however tiny, can produce a 0-row tile.
std::size_t tile_rows_for_target(double target_bytes, Offset total_flop,
                                 std::size_t nrows,
                                 std::size_t bytes_per_slot, double lo,
                                 double hi) {
  if (nrows == 0) return 1;
  if (bytes_per_slot == 0) bytes_per_slot = sizeof(std::int32_t);
  const double avg_row_flop =
      std::max(1.0, static_cast<double>(total_flop) /
                        static_cast<double>(nrows));
  const double rows =
      target_bytes / (2.0 * avg_row_flop * static_cast<double>(bytes_per_slot));
  return static_cast<std::size_t>(std::clamp(rows, std::max(1.0, lo), hi));
}

}  // namespace

std::size_t choose_tile_rows(Offset total_flop, std::size_t nrows,
                             std::size_t reuse_budget_bytes,
                             std::size_t bytes_per_slot) {
  // A captured row needs ~(flop + nnz) slots <= 2*flop slots; target the
  // tile's capture footprint, never exceeding half the budget so at least
  // one full tile can always be captured.
  double target_bytes = static_cast<double>(kTileCaptureTargetBytes);
  if (reuse_budget_bytes > 0) {
    target_bytes =
        std::min(target_bytes, static_cast<double>(reuse_budget_bytes) / 2.0);
  }
  return tile_rows_for_target(target_bytes, total_flop, nrows, bytes_per_slot,
                              16.0, 65536.0);
}

ScheduleBudgets derive_schedule_budgets(const TierParams& fast_tier,
                                        int threads, Offset total_flop,
                                        std::size_t nrows,
                                        std::size_t bytes_per_slot) {
  ScheduleBudgets out;
  if (threads < 1) threads = 1;
  const double share_bytes =
      fast_tier.capacity_gb * 1e9 / static_cast<double>(threads);

  // Bandwidth floor: time per stanza is latency + s/bw, so a stream of s
  // bytes runs at s/(latency*bw + s) of the thread's peak; s = 49*latency*bw
  // reaches 98%.  Cutting tiles below this floor would spend the pass in
  // stanza latency instead of streaming.
  const double floor_bytes =
      49.0 * fast_tier.latency_ns * fast_tier.thread_bw_gbps;

  // Capacity target: 1/8 of the thread's tier share, so the capture stream,
  // the accumulator, the staged output and the touched B rows fit together.
  const double target_bytes = std::max(floor_bytes, share_bytes / 8.0);
  out.tile_target_bytes = static_cast<std::size_t>(target_bytes);
  out.tile_rows = tile_rows_for_target(target_bytes, total_flop, nrows,
                                       bytes_per_slot, 1.0, 1 << 20);

  // The whole per-thread slot-stream store may take half the tier share —
  // beyond that the streams themselves evict what they feed.
  out.capture_budget_bytes = static_cast<std::size_t>(
      std::max(1.0, share_bytes / 2.0));
  return out;
}

bool reuse_pays(double collision_factor, std::size_t reuse_budget_bytes) {
  if (reuse_budget_bytes == 0) return false;
  // One saved probe per flop already beats the slot-stream traffic; only a
  // collision factor below ~0.5 (impossible for probing accumulators, and
  // the SPA's direct indexing still skips its flag branch) would lose.
  return collision_factor >= 0.5;
}

int choose_lane_width(Offset flop, const TierParams& fast_tier,
                      int pool_width, std::size_t bytes_per_slot) {
  if (pool_width <= 1 || flop <= 0) return 1;
  // One worker's equal share of the fast tier, expressed as the flop whose
  // ~2-slots-per-flop capture stream fills it.
  const double share_bytes =
      fast_tier.capacity_gb * 1e9 / static_cast<double>(pool_width);
  const double slot_bytes = 2.0 * static_cast<double>(bytes_per_slot);
  const auto grain = static_cast<Offset>(
      std::max(static_cast<double>(kLaneMinFlopPerWorker),
               share_bytes / std::max(1.0, slot_bytes)));
  const Offset lanes = (flop + grain - 1) / grain;
  if (lanes >= static_cast<Offset>(pool_width)) return pool_width;
  return static_cast<int>(std::max<Offset>(1, lanes));
}

std::size_t derive_cache_budget_bytes(const TierParams& tier) {
  const double capacity_bytes = tier.capacity_gb * 1e9;
  const double share = capacity_bytes / 8.0;
  const auto floor_bytes = static_cast<double>(kDefaultPlanBudgetBytes);
  constexpr double kCapBytes = 8e9;
  return static_cast<std::size_t>(
      std::min(kCapBytes, std::max(floor_bytes, share)));
}

}  // namespace spgemm::model
