#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace spgemm::model {

double log2_at_least2(double x) {
  return std::log2(std::max(2.0, x));
}

double heap_cost(const CostInputs& in) {
  return in.sum_flop_log_nnz_a;
}

double hash_cost(const CostInputs& in, bool sorted) {
  double cost = static_cast<double>(in.flop) * in.collision_factor;
  if (sorted) cost += in.sum_nnz_log_nnz_c;
  return cost;
}

std::size_t choose_tile_rows(Offset total_flop, std::size_t nrows,
                             std::size_t reuse_budget_bytes,
                             std::size_t bytes_per_slot) {
  if (nrows == 0) return 1;
  if (bytes_per_slot == 0) bytes_per_slot = sizeof(std::int32_t);
  const double avg_row_flop =
      std::max(1.0, static_cast<double>(total_flop) /
                        static_cast<double>(nrows));
  // A captured row needs ~(flop + nnz) slots <= 2*flop slots; target the
  // tile's capture footprint, never exceeding half the budget so at least
  // one full tile can always be captured.
  double target_bytes = static_cast<double>(kTileCaptureTargetBytes);
  if (reuse_budget_bytes > 0) {
    target_bytes =
        std::min(target_bytes, static_cast<double>(reuse_budget_bytes) / 2.0);
  }
  const double rows =
      target_bytes / (2.0 * avg_row_flop * static_cast<double>(bytes_per_slot));
  return static_cast<std::size_t>(
      std::clamp(rows, 16.0, 65536.0));
}

bool reuse_pays(double collision_factor, std::size_t reuse_budget_bytes) {
  if (reuse_budget_bytes == 0) return false;
  // One saved probe per flop already beats the slot-stream traffic; only a
  // collision factor below ~0.5 (impossible for probing accumulators, and
  // the SPA's direct indexing still skips its flag branch) would lose.
  return collision_factor >= 0.5;
}

}  // namespace spgemm::model
