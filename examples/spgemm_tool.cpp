// spgemm_tool: command-line SpGEMM over MatrixMarket files.
//
//   spgemm_tool A.mtx [B.mtx] [options]
//
//   --algorithm=NAME   heap|hash|hashvector|spa|spa1p|kkhash|merge|
//                      adaptive|auto
//   --unsorted         emit unsorted rows (the paper's fast path)
//   --threads=N        OpenMP thread count (default: runtime's choice)
//   --output=PATH      write C as MatrixMarket (default: stats only)
//   --square           ignore B and compute A^2 (default when B omitted)
//
// Prints the multiply statistics (flop, nnz, compression ratio, phase
// timings, MFLOPS) plus the Table 4 recipe's suggestion for the input.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "spgemm/spgemm.hpp"

namespace {

spgemm::Algorithm parse_algorithm(const std::string& name) {
  using spgemm::Algorithm;
  if (name == "heap") return Algorithm::kHeap;
  if (name == "hash") return Algorithm::kHash;
  if (name == "hashvector") return Algorithm::kHashVector;
  if (name == "spa") return Algorithm::kSpa;
  if (name == "spa1p") return Algorithm::kSpa1p;
  if (name == "kkhash") return Algorithm::kKkHash;
  if (name == "merge") return Algorithm::kMerge;
  if (name == "adaptive") return Algorithm::kAdaptive;
  if (name == "auto") return Algorithm::kAuto;
  std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spgemm;

  std::string path_a;
  std::string path_b;
  std::optional<std::string> output;
  SpGemmOptions opts;
  opts.algorithm = Algorithm::kAuto;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algorithm=", 0) == 0) {
      opts.algorithm = parse_algorithm(arg.substr(12));
    } else if (arg == "--unsorted") {
      opts.sort_output = SortOutput::kNo;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--output=", 0) == 0) {
      output = arg.substr(9);
    } else if (arg == "--square") {
      path_b.clear();
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: spgemm_tool A.mtx [B.mtx] [--algorithm=NAME] "
                  "[--unsorted] [--threads=N] [--output=C.mtx]\n");
      return 0;
    } else if (path_a.empty()) {
      path_a = arg;
    } else {
      path_b = arg;
    }
  }
  if (path_a.empty()) {
    std::fprintf(stderr, "usage: spgemm_tool A.mtx [B.mtx] [options] "
                         "(--help for details)\n");
    return 2;
  }

  try {
    const auto a = io::read_matrix_market<std::int32_t, double>(path_a);
    const auto b = path_b.empty()
                       ? a
                       : io::read_matrix_market<std::int32_t, double>(path_b);
    std::printf("A: %d x %d, %lld nnz  (%s)\n", a.nrows, a.ncols,
                static_cast<long long>(a.nnz()), path_a.c_str());
    if (!path_b.empty()) {
      std::printf("B: %d x %d, %lld nnz  (%s)\n", b.nrows, b.ncols,
                  static_cast<long long>(b.nnz()), path_b.c_str());
    }

    const Algorithm recipe_pick = recipe::select_for(
        a, b, recipe::Operation::kSquare, opts.sort_output,
        recipe::DataOrigin::kReal);
    std::printf("recipe (Table 4) suggests: %s\n",
                algorithm_name(recipe_pick));

    SpGemmStats stats;
    const auto c = multiply(a, b, opts, &stats);
    std::printf(
        "C = A*B: %d x %d, %lld nnz\n"
        "  algorithm : %s (%s output)\n"
        "  flop      : %lld  (compression ratio %.2f)\n"
        "  timings   : setup %.2f ms, symbolic %.2f ms, numeric %.2f ms\n"
        "  rate      : %.1f MFLOPS\n",
        c.nrows, c.ncols, static_cast<long long>(c.nnz()),
        algorithm_name(opts.algorithm == Algorithm::kAuto ? recipe_pick
                                                          : opts.algorithm),
        opts.sort_output == SortOutput::kYes ? "sorted" : "unsorted",
        static_cast<long long>(stats.flop),
        static_cast<double>(stats.flop) /
            static_cast<double>(std::max<Offset>(stats.nnz_out, 1)),
        stats.setup_ms, stats.symbolic_ms, stats.numeric_ms,
        stats.mflops());

    if (output) {
      io::write_matrix_market(*output, c);
      std::printf("wrote %s\n", output->c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
