// Quickstart: build a sparse matrix, square it with two different kernels,
// inspect the result, let the recipe pick an algorithm, and round-trip
// through MatrixMarket.
//
//   ./quickstart [scale] [edge_factor]
#include <cstdio>
#include <cstdlib>

#include "spgemm/spgemm.hpp"

int main(int argc, char** argv) {
  using namespace spgemm;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const int edge_factor = argc > 2 ? std::atoi(argv[2]) : 16;

  std::printf("spgemm quickstart — SIMD level: %s\n",
              simd_level_name(detected_simd_level()));

  // 1. Generate a Graph500-style input (2^scale square, ~edge_factor nnz
  //    per row, skewed degree distribution).
  const auto a = rmat_matrix<std::int32_t, double>(
      RmatParams::g500(scale, edge_factor, /*seed=*/42));
  std::printf("A: %d x %d, %lld nonzeros\n", a.nrows, a.ncols,
              static_cast<long long>(a.nnz()));

  // 2. Square it with the paper's Hash kernel, sorted output.
  SpGemmOptions opts;
  opts.algorithm = Algorithm::kHash;
  opts.sort_output = SortOutput::kYes;
  SpGemmStats stats;
  const auto c = multiply(a, a, opts, &stats);
  std::printf(
      "Hash:      C = A^2 has %lld nnz  (flop %lld, CR %.2f)  in %.2f ms "
      "(%.0f MFLOPS)\n",
      static_cast<long long>(c.nnz()), static_cast<long long>(stats.flop),
      static_cast<double>(stats.flop) / static_cast<double>(c.nnz()),
      stats.total_ms(), stats.mflops());

  // 3. The unsorted fast path (the paper's headline optimization).
  opts.sort_output = SortOutput::kNo;
  const auto c_unsorted = multiply(a, a, opts, &stats);
  std::printf("Hash (unsorted):  same product in %.2f ms (%.0f MFLOPS)\n",
              stats.total_ms(), stats.mflops());
  (void)c_unsorted;

  // 4. Let the Table 4 recipe choose: skewed synthetic data -> Hash family.
  const Algorithm chosen = recipe::select_for(
      a, a, recipe::Operation::kSquare, SortOutput::kYes,
      recipe::DataOrigin::kSynthetic);
  std::printf("recipe suggests: %s\n", algorithm_name(chosen));

  // 5. Round-trip the product through MatrixMarket.
  const char* path = "/tmp/spgemm_quickstart_c.mtx";
  io::write_matrix_market(path, c);
  const auto c_back = io::read_matrix_market<std::int32_t, double>(path);
  std::printf("MatrixMarket round-trip: %s (%lld nnz)\n",
              approx_equal(c, c_back, 1e-12) ? "OK" : "MISMATCH",
              static_cast<long long>(c_back.nnz()));
  return 0;
}
