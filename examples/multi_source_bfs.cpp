// Multi-source BFS via square x tall-skinny SpGEMM (paper §5.5): run k
// simultaneous BFS traversals as one sequence of sparse matrix products
// and report the level histogram and traversal rate.
//
//   ./multi_source_bfs [scale] [num_sources]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "apps/msbfs.hpp"
#include "spgemm/spgemm.hpp"

int main(int argc, char** argv) {
  using namespace spgemm;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const int num_sources = argc > 2 ? std::atoi(argv[2]) : 64;

  RmatParams params = RmatParams::g500(scale, 16, 11);
  params.symmetric = true;  // undirected: one component dominates
  const auto graph = rmat_matrix<std::int32_t, double>(params);
  std::printf("graph: %d vertices, %lld edges, %d BFS sources\n",
              graph.nrows, static_cast<long long>(graph.nnz()),
              num_sources);

  // Sources: the first num_sources vertices with nonzero degree.
  std::vector<std::int32_t> sources;
  for (std::int32_t v = 0; v < graph.nrows &&
                           static_cast<int>(sources.size()) < num_sources;
       ++v) {
    if (graph.row_nnz(v) > 0) sources.push_back(v);
  }

  SpGemmOptions opts;
  opts.algorithm = Algorithm::kHash;
  opts.sort_output = SortOutput::kNo;  // frontiers never need sorted rows

  Timer timer;
  const auto result = apps::multi_source_bfs(graph, sources, opts);
  const double ms = timer.millis();

  // Level histogram over all (vertex, source) pairs.
  std::map<std::int32_t, long long> histogram;
  long long reached = 0;
  for (const auto level : result.levels) {
    if (level >= 0) {
      ++histogram[level];
      ++reached;
    }
  }
  std::printf("finished in %.2f ms over %d frontier expansions\n", ms,
              result.iterations);
  std::printf("reached %lld of %lld (vertex, source) pairs\n", reached,
              static_cast<long long>(result.levels.size()));
  std::printf("level histogram:\n");
  for (const auto& [level, count] : histogram) {
    std::printf("  level %2d: %lld\n", level, count);
  }
  std::printf("traversal rate: %.1f M(vertex,source)/s\n",
              static_cast<double>(reached) / ms / 1e3);
  return 0;
}
