// Triangle counting on a synthetic social-network-like graph (paper §5.6):
// degree reordering, L+U split, the L*U SpGEMM, and the masked reduction —
// comparing the Heap and Hash kernels on the same pipeline.
//
//   ./triangle_counting [scale] [edge_factor]
#include <cstdio>
#include <cstdlib>

#include "apps/triangle_count.hpp"
#include "spgemm/spgemm.hpp"

int main(int argc, char** argv) {
  using namespace spgemm;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const int edge_factor = argc > 2 ? std::atoi(argv[2]) : 8;

  // Undirected power-law graph (mirrored G500).
  RmatParams params = RmatParams::g500(scale, edge_factor, 7);
  params.symmetric = true;
  const auto graph = rmat_matrix<std::int32_t, double>(params);
  std::printf("graph: %d vertices, %lld (directed) edges\n", graph.nrows,
              static_cast<long long>(graph.nnz()));

  for (const Algorithm algo : {Algorithm::kHeap, Algorithm::kHash,
                               Algorithm::kHashVector}) {
    SpGemmOptions opts;
    opts.algorithm = algo;
    const auto result = apps::count_triangles(graph, opts);
    std::printf(
        "%-12s %lld triangles  (L*U: flop %lld, nnz %lld, %.2f ms, %.0f "
        "MFLOPS)\n",
        algorithm_name(algo), static_cast<long long>(result.triangles),
        static_cast<long long>(result.spgemm_stats.flop),
        static_cast<long long>(result.spgemm_stats.nnz_out),
        result.spgemm_stats.total_ms(), result.spgemm_stats.mflops());
  }

  std::printf(
      "\nthe counts must agree across kernels; the timing differences\n"
      "illustrate the Fig. 17 trade-off (Heap favoured at low CR).\n");
  return 0;
}
