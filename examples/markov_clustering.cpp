// Markov clustering (MCL) driven by SpGEMM expansion (paper §1; HipMCL):
// cluster a planted-partition graph and check the recovered communities,
// timing the repeated A^2 products that dominate the algorithm.
//
//   ./markov_clustering [communities] [community_size]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/markov_cluster.hpp"
#include "spgemm/spgemm.hpp"

int main(int argc, char** argv) {
  using namespace spgemm;

  const int communities = argc > 1 ? std::atoi(argv[1]) : 16;
  const int size = argc > 2 ? std::atoi(argv[2]) : 24;
  const std::int32_t n = communities * size;

  // Planted partition: dense cliques plus a sparse ring of bridges.
  CooMatrix<std::int32_t, double> coo;
  coo.nrows = n;
  coo.ncols = n;
  SplitMix64 rng(5);
  for (int c = 0; c < communities; ++c) {
    const std::int32_t base = c * size;
    for (std::int32_t i = 0; i < size; ++i) {
      for (std::int32_t j = i + 1; j < size; ++j) {
        if (rng.next_double() < 0.6) {
          coo.push_back(base + i, base + j, 1.0);
          coo.push_back(base + j, base + i, 1.0);
        }
      }
    }
    // One bridge to the next community.
    const std::int32_t u = base;
    const std::int32_t v = ((c + 1) % communities) * size;
    coo.push_back(u, v, 1.0);
    coo.push_back(v, u, 1.0);
  }
  const auto graph = csr_from_coo(std::move(coo));
  std::printf("planted graph: %d vertices, %lld edges, %d communities\n", n,
              static_cast<long long>(graph.nnz()), communities);

  SpGemmOptions opts;
  opts.algorithm = Algorithm::kHash;
  Timer timer;
  const auto result = apps::markov_cluster(graph, apps::MclParams{}, opts);
  std::printf("MCL: %d clusters in %d iterations (%.2f ms), %s\n",
              result.clusters, result.iterations, timer.millis(),
              result.converged ? "converged" : "iteration budget hit");
  std::printf("expansion plans: %d symbolic builds, %d numeric-only replays "
              "(structure froze %s convergence)\n",
              result.plan_builds, result.plan_reuses,
              result.plan_reuses > 0 ? "before" : "only at");

  // Score: fraction of vertices whose label matches the majority label of
  // their planted community.
  int correct = 0;
  for (int c = 0; c < communities; ++c) {
    std::vector<int> votes(static_cast<std::size_t>(result.clusters), 0);
    for (int i = 0; i < size; ++i) {
      ++votes[static_cast<std::size_t>(
          result.cluster_of[static_cast<std::size_t>(c * size + i)])];
    }
    int majority = 0;
    for (const int v : votes) majority = std::max(majority, v);
    correct += majority;
  }
  std::printf("community recovery: %.1f%% of vertices in their planted "
              "community's majority cluster\n",
              100.0 * correct / n);
  return 0;
}
