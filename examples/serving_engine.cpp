// Serving engine walkthrough: one SpGemmEngine carrying mixed traffic —
// an asynchronous submit() stream, a run_batch() of heterogeneous
// products, and two applications (MCL clustering, AMG Galerkin
// re-assembly) all sharing the engine's plan cache and worker pool.
//
//   ./example_serving_engine [scale]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "apps/amg_galerkin.hpp"
#include "apps/markov_cluster.hpp"
#include "spgemm/spgemm.hpp"

int main(int argc, char** argv) {
  using namespace spgemm;
  using Engine = engine::SpGemmEngine<std::int32_t, double>;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;

  engine::EngineOptions eo;
  eo.plan.algorithm = Algorithm::kHash;
  eo.plan.sort_output = SortOutput::kNo;
  Engine eng(eo);
  std::printf("engine: pool of %d workers, cache budget %.0f MB\n",
              eng.pool_threads(),
              static_cast<double>(eng.cache().budget_bytes()) / 1e6);

  // --- 1. A stream of repeated structures through submit(). --------------
  // Each round gets its own value-copy: request inputs must stay unchanged
  // until delivery, and all four rounds are in flight concurrently.  The
  // structure (and so the fingerprint) is shared, so rounds 1-3 hit the
  // plan cached by round 0.
  const auto big = rmat_matrix<std::int32_t, double>(
      RmatParams::g500(scale, 8, /*seed=*/1));
  std::vector<CsrMatrix<std::int32_t, double>> rounds(4, big);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    for (auto& v : rounds[r].vals) v *= 1.0 + 1e-4 * static_cast<double>(r);
  }
  std::vector<std::future<Engine::Product>> inflight;
  for (const auto& m : rounds) inflight.push_back(eng.submit(m, m));
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    const Engine::Product p = inflight[i].get();
    std::printf("stream %zu: nnz=%lld  %s  latency %.2f ms\n", i,
                static_cast<long long>(p.c.nnz()),
                p.cache_hit ? "cache HIT (numeric-only replay)"
                            : "cache miss (planned)",
                p.latency_ms);
  }

  // --- 2. A heterogeneous batch: flop-ordered admission. ------------------
  std::vector<CsrMatrix<std::int32_t, double>> mix;
  for (int s = 0; s < 6; ++s) {
    mix.push_back(rmat_matrix<std::int32_t, double>(
        RmatParams::g500(scale - 4 + (s % 3), 8, 100 + s)));
  }
  std::vector<Engine::Request> reqs;
  for (const auto& m : mix) reqs.push_back({&m, &m});
  const auto products = eng.run_batch(reqs);
  for (std::size_t i = 0; i < products.size(); ++i) {
    std::printf("batch %zu: flop=%lld  %s\n", i,
                static_cast<long long>(products[i].flop),
                products[i].packed_small ? "packed on one worker"
                                         : "fanned out across the pool");
  }

  // --- 3. Applications as tenants of the same cache. ----------------------
  const auto graph = rmat_matrix<std::int32_t, double>(
      RmatParams::g500(scale - 4, 4, /*seed=*/7));
  const auto mcl = apps::markov_cluster(graph, eng);
  std::printf("MCL through engine: %d clusters in %d iterations "
              "(%d cache misses, %d hits)\n",
              static_cast<int>(mcl.clusters), mcl.iterations,
              mcl.plan_builds, mcl.plan_reuses);

  auto fine = apps::poisson_2d<std::int32_t, double>(128, 128);
  const auto p = apps::aggregation_prolongator<std::int32_t, double>(
      fine.nrows, 4);
  apps::GalerkinReassembler<std::int32_t, double> rap(eng, fine, p);
  for (int step = 0; step < 3; ++step) {
    for (auto& v : fine.vals) v *= 1.0001;
    const auto& coarse = rap.reassemble(fine);
    std::printf("AMG step %d: coarse nnz=%lld, %s\n", step,
                static_cast<long long>(coarse.nnz()),
                rap.last_step_cached() ? "both products cached"
                                       : "planned");
  }

  const auto cs = eng.cache_stats();
  std::printf("cache totals: %llu hits, %llu misses, %llu evictions, "
              "%zu plans retaining %.1f MB\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions), cs.entries,
              static_cast<double>(cs.retained_bytes) / 1e6);
  return 0;
}
