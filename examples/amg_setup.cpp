// Algebraic-multigrid setup via Galerkin triple products (paper §1's
// numerical motivation): build a hierarchy of coarse operators for a 2D
// Poisson problem with A_c = P^T A P computed by SpGEMM at every level,
// and report the operator complexity (a standard AMG health metric).
//
//   ./amg_setup [grid_side] [aggregate_size]
#include <cstdio>
#include <cstdlib>

#include "apps/amg_galerkin.hpp"
#include "spgemm/spgemm.hpp"

int main(int argc, char** argv) {
  using namespace spgemm;

  const std::int32_t side = argc > 1 ? std::atoi(argv[1]) : 256;
  const std::int32_t agg = argc > 2 ? std::atoi(argv[2]) : 4;

  auto a = apps::poisson_2d<std::int32_t, double>(side, side);
  std::printf("fine operator: %d unknowns, %lld nnz (2D Poisson %dx%d)\n",
              a.nrows, static_cast<long long>(a.nnz()), side, side);

  SpGemmOptions opts;
  opts.algorithm = Algorithm::kHash;

  const long long fine_nnz = a.nnz();
  long long total_nnz = fine_nnz;
  int level = 0;
  double total_ms = 0.0;
  while (a.nrows > 64) {
    const auto p = apps::aggregation_prolongator<std::int32_t, double>(
        a.nrows, agg);
    const auto result = apps::galerkin_product(a, p, opts);
    total_ms += result.ap_stats.total_ms() + result.rap_stats.total_ms();
    ++level;
    std::printf(
        "level %d: %7d -> %7d unknowns, coarse nnz %9lld   (A*P %.2f ms, "
        "P^T*(AP) %.2f ms)\n",
        level, a.nrows, result.coarse.nrows,
        static_cast<long long>(result.coarse.nnz()),
        result.ap_stats.total_ms(), result.rap_stats.total_ms());
    a = result.coarse;
    total_nnz += a.nnz();
  }

  std::printf("\nhierarchy: %d levels, operator complexity %.3f "
              "(sum nnz / fine nnz), SpGEMM time %.2f ms\n",
              level + 1,
              static_cast<double>(total_nnz) /
                  static_cast<double>(fine_nnz),
              total_ms);
  return 0;
}
